//! Pre-sync compaction of tentative histories.
//!
//! The merge protocol's reprocessing bill is paid *per tentative
//! transaction*: every pending transaction is graph-inserted, weighed,
//! possibly backed out, and re-validated at synchronization time. This
//! module squashes groups of pending transactions into one composite
//! transaction each **before** the history is offered to the base, so the
//! precedence graph, back-out weights and session records all shrink —
//! without changing a single committed byte.
//!
//! # When is squashing safe?
//!
//! Compaction partitions the tentative history `H_m` into *conflict
//! clusters*: connected components of the symmetric conflict relation
//! (`r∩w ∪ w∩r ∪ w∩w`, answered by the arena's admission-time bitsets).
//! Two transactions in different clusters never conflict, so any
//! reordering of `H_m` that preserves the relative order *within* each
//! cluster is execution-equivalent — same observed reads, same final
//! state. Gathering a cluster's members to the position of its first
//! member is such a reordering, and once gathered, adjacent members
//! compose exactly: [`Program::sequenced`] concatenates the statement
//! lists (with parameter indices shifted), and the interpreter's read
//! environment persists across the concatenation, so the composite's
//! effect on any state is the constituents' sequential effect.
//!
//! The composite must also be invisible to the *merge*. A squashed group
//! is only formed from clusters that are **isolated from the concurrent
//! base history**: no member reads anything the base wrote, writes
//! anything the base read, or writes anything the base wrote. An isolated
//! cluster acquires no cross precedence edges, is never backed out, and
//! every member is saved verbatim — individually in the legacy run, as
//! one composite in the compacted run — so the values forwarded to the
//! base are identical and the committed base state is byte-identical
//! (the differential suite pins this on every scenario).
//!
//! Members carrying a *precondition* (withdraw, transfer, sell, reserve)
//! are never absorbed into a composite: a composite reports one aggregate
//! success, which would erase the per-transaction failure reporting of
//! protocol step 6. They stay in place as singletons, and because moving
//! a later cluster member past them would reorder the cluster, they also
//! split their cluster's squash runs.
//!
//! # Modes
//!
//! [`CompactionMode::Adjacent`] squashes only *contiguous* runs of
//! squashable transactions — the conservative form app-side transaction
//! merging takes when it can only see neighbouring requests.
//! [`CompactionMode::Gather`] (the default) additionally gathers
//! non-contiguous members of the same cluster across unrelated
//! transactions, which is where most of the win is on workloads whose
//! conflict hot spots are interleaved with independent traffic.
//!
//! An optional [`SemanticOracle`] widens gathering further
//! ([`compact_with_oracle`]): a same-cluster transaction blocking a
//! gather may be jumped when the oracle proves the pair commutes. That
//! preserves final-state equivalence (property-tested) but *not* the
//! byte-identical merge trace, so the simulator never enables it by
//! default.

use histmerge_history::{SerialHistory, TxnArena};
use histmerge_txn::{Program, Transaction, TxnId, TxnKind, Value, VarSet};
use std::sync::Arc;

use crate::canfollow::can_follow;
use crate::oracle::SemanticOracle;

/// How aggressively the compactor may reorder while grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionMode {
    /// Squash only contiguous runs of squashable transactions.
    Adjacent,
    /// Also gather non-contiguous members of one conflict cluster to the
    /// first member's position (legal: members of other clusters never
    /// conflict, so the within-cluster order is all that matters).
    Gather,
}

/// Configuration of the pre-sync compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionConfig {
    /// Master switch; `false` makes [`compact`] the identity.
    pub enabled: bool,
    /// Grouping aggressiveness.
    pub mode: CompactionMode,
    /// Minimum group size worth a composite (clamped to at least 2).
    pub min_run: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig { enabled: false, mode: CompactionMode::Gather, min_run: 2 }
    }
}

impl CompactionConfig {
    /// The default configuration with the master switch on.
    pub fn enabled() -> Self {
        CompactionConfig { enabled: true, ..CompactionConfig::default() }
    }
}

/// The result of one compaction pass.
#[derive(Debug, Clone)]
pub struct CompactionOutcome {
    /// The compacted history: composites at their group anchors, every
    /// other transaction untouched and in its original relative order.
    pub history: SerialHistory,
    /// Each composite's id with its constituents in execution order.
    pub composites: Vec<(TxnId, Vec<TxnId>)>,
    /// Transactions offered to the pass (`hm.len()`).
    pub txns_in: usize,
    /// Transactions in the compacted history.
    pub txns_out: usize,
    /// Number of composites formed.
    pub runs_squashed: usize,
}

impl CompactionOutcome {
    /// The identity outcome: nothing squashed.
    fn identity(hm: &SerialHistory) -> Self {
        CompactionOutcome {
            history: hm.clone(),
            composites: Vec::new(),
            txns_in: hm.len(),
            txns_out: hm.len(),
            runs_squashed: 0,
        }
    }
}

/// Compacts `hm` against the concurrent base footprint (`hb_reads`,
/// `hb_writes`), allocating composite transactions in `arena`. Mask-only:
/// no semantic oracle is consulted, so the compacted history is
/// merge-equivalent to the original (see the module docs).
pub fn compact(
    arena: &mut TxnArena,
    hm: &SerialHistory,
    hb_reads: &VarSet,
    hb_writes: &VarSet,
    config: &CompactionConfig,
) -> CompactionOutcome {
    compact_with_oracle(arena, hm, hb_reads, hb_writes, config, None)
}

/// [`compact`] with an optional semantic widener: a same-cluster
/// transaction blocking a gather may be jumped when `oracle` proves the
/// pair commutes. Final-state equivalent, but the merge trace may differ
/// from the uncompacted run's — keep it off where byte-identity matters.
pub fn compact_with_oracle(
    arena: &mut TxnArena,
    hm: &SerialHistory,
    hb_reads: &VarSet,
    hb_writes: &VarSet,
    config: &CompactionConfig,
    oracle: Option<&dyn SemanticOracle>,
) -> CompactionOutcome {
    let min_run = config.min_run.max(2);
    let n = hm.len();
    if !config.enabled || n < min_run {
        return CompactionOutcome::identity(hm);
    }
    let ids: Vec<TxnId> = hm.iter().collect();

    // A transaction is *quiet* when its footprint cannot interact with the
    // concurrent base history in any direction. A cluster is isolated iff
    // every member is quiet (the union overlaps iff some member does).
    let quiet: Vec<bool> = ids
        .iter()
        .map(|&id| {
            let t = arena.get(id);
            !t.readset().intersects(hb_writes)
                && !t.writeset().intersects(hb_reads)
                && !t.writeset().intersects(hb_writes)
        })
        .collect();

    // Conflict clusters via union-find over the arena's bitset conflicts.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if arena.conflicts(ids[i], ids[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let root: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    let mut cluster_isolated = vec![true; n];
    for i in 0..n {
        if !quiet[i] {
            cluster_isolated[root[i]] = false;
        }
    }

    // A squash candidate sits in an isolated cluster and reports no
    // per-transaction precondition outcome the composite would swallow.
    let candidate: Vec<bool> = (0..n)
        .map(|i| cluster_isolated[root[i]] && arena.get(ids[i]).precondition().is_none())
        .collect();

    // Greedy grouping, one open group per cluster, members in history
    // order. A member may join the open group iff every transaction
    // strictly between the group anchor and the member can be passed on
    // the way back: mask-independent (exactly "not in this cluster" —
    // checked with the can-follow masks rather than assumed), or proven
    // commuting by the oracle.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut open_of: Vec<Option<usize>> = vec![None; n]; // cluster root -> open group
    let mut grouped: Vec<Option<usize>> = vec![None; n]; // position -> group index
    for i in 0..n {
        let r = root[i];
        if !candidate[i] {
            // Not groupable itself, but it does not force the cluster's
            // open group shut: whether later members can still be gathered
            // past it is decided by the join check below.
            continue;
        }
        let joined = match open_of[r] {
            None => None,
            Some(g) => {
                let ok = match config.mode {
                    // Contiguous only: the member must directly extend the
                    // group's last position.
                    CompactionMode::Adjacent => *groups[g].last().unwrap() + 1 == i,
                    CompactionMode::Gather => {
                        let anchor = groups[g][0];
                        let t_i = arena.get(ids[i]);
                        (anchor + 1..i).filter(|j| grouped[*j] != Some(g)).all(|j| {
                            let t_j = arena.get(ids[j]);
                            let independent = can_follow(t_i, t_j)
                                && can_follow(t_j, t_i)
                                && !t_i.write_mask().intersects(t_j.write_mask());
                            independent
                                || oracle
                                    .map(|o| o.commutes_backward_through(t_i, t_j))
                                    .unwrap_or(false)
                        })
                    }
                };
                if ok {
                    groups[g].push(i);
                    grouped[i] = Some(g);
                    Some(g)
                } else {
                    None
                }
            }
        };
        if joined.is_none() {
            groups.push(vec![i]);
            grouped[i] = Some(groups.len() - 1);
            open_of[r] = Some(groups.len() - 1);
        }
    }

    // Dissolve groups below the squash threshold.
    for g in &mut groups {
        if g.len() < min_run {
            for &i in g.iter() {
                grouped[i] = None;
            }
            g.clear();
        }
    }

    // Materialize one composite transaction per surviving group.
    let mut composite_at: Vec<Option<TxnId>> = vec![None; n];
    let mut composites = Vec::new();
    let mut runs_squashed = 0usize;
    for group in groups.iter().filter(|g| !g.is_empty()) {
        let members: Vec<&Transaction> = group.iter().map(|&i| arena.get(ids[i])).collect();
        let name = members.iter().map(|t| t.name()).collect::<Vec<_>>().join("+").replace(' ', "_");
        let name = format!("sq({name})");
        let parts: Vec<&Program> = members.iter().map(|t| t.program().as_ref()).collect();
        let forward = Arc::new(Program::sequenced(&name, &parts));
        let params: Vec<Value> = members.iter().flat_map(|t| t.params().iter().copied()).collect();
        // The composite undoes by running the constituents' inverses in
        // reverse order, each reading its slice of the forward parameter
        // vector — only constructible when every constituent declared one.
        let inverse = if members.iter().all(|t| t.inverse().is_some()) {
            let mut offsets = Vec::with_capacity(members.len());
            let mut offset = 0usize;
            for t in &members {
                offsets.push(offset);
                offset += t.params().len().max(t.program().n_params());
            }
            let placed: Vec<(&Program, usize)> = members
                .iter()
                .zip(&offsets)
                .rev()
                .map(|(t, &at)| (t.inverse().unwrap().as_ref(), at))
                .collect();
            Some(Arc::new(Program::sequenced_with_offsets(format!("{name}^-1"), &placed)))
        } else {
            None
        };
        let member_ids: Vec<TxnId> = group.iter().map(|&i| ids[i]).collect();
        let cid = arena.alloc(|id| {
            let t = Transaction::new(id, name.clone(), TxnKind::Tentative, forward.clone(), params);
            match &inverse {
                Some(inv) => t.with_inverse(inv.clone()),
                None => t,
            }
        });
        composite_at[group[0]] = Some(cid);
        composites.push((cid, member_ids));
        runs_squashed += 1;
    }

    if runs_squashed == 0 {
        return CompactionOutcome::identity(hm);
    }
    let mut history = SerialHistory::new();
    for i in 0..n {
        if let Some(cid) = composite_at[i] {
            history.push(cid);
        } else if grouped[i].is_none() {
            history.push(ids[i]);
        }
    }
    let txns_out = history.len();
    CompactionOutcome { history, composites, txns_in: n, txns_out, runs_squashed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_history::run_to_final;
    use histmerge_txn::{DbState, VarId};

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn deposit(arena: &mut TxnArena, acct: VarId, amt: Value) -> TxnId {
        use histmerge_txn::{Expr, ProgramBuilder};
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("dep{}+{amt}", acct))
                .read(acct)
                .update(acct, Expr::var(acct) + Expr::konst(amt))
                .build()
                .unwrap(),
        );
        let inv: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("dep{}-{amt}", acct))
                .read(acct)
                .update(acct, Expr::var(acct) - Expr::konst(amt))
                .build()
                .unwrap(),
        );
        arena.alloc(|id| {
            Transaction::new(id, format!("d{id}"), TxnKind::Tentative, fwd.clone(), vec![])
                .with_inverse(inv.clone())
        })
    }

    fn withdraw(arena: &mut TxnArena, acct: VarId, amt: Value) -> TxnId {
        use histmerge_txn::{Expr, ProgramBuilder};
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("wd{}-{amt}", acct))
                .read(acct)
                .branch(
                    Expr::var(acct).ge(Expr::konst(amt)),
                    |b| b.update(acct, Expr::var(acct) - Expr::konst(amt)),
                    |b| b,
                )
                .build()
                .unwrap(),
        );
        arena.alloc(|id| {
            Transaction::new(id, format!("w{id}"), TxnKind::Tentative, fwd.clone(), vec![])
                .with_precondition(Expr::var(acct).ge(Expr::konst(amt)))
        })
    }

    fn state(n: u32, val: Value) -> DbState {
        DbState::uniform(n, val)
    }

    #[test]
    fn gather_squashes_same_account_deposits_across_noise() {
        let mut arena = TxnArena::new();
        // d(a0) d(a1) d(a0) d(a2) d(a0): the a0 cluster has 3 members
        // interleaved with unrelated deposits.
        let order = [
            deposit(&mut arena, v(0), 10),
            deposit(&mut arena, v(1), 5),
            deposit(&mut arena, v(0), 20),
            deposit(&mut arena, v(2), 7),
            deposit(&mut arena, v(0), 40),
        ];
        let hm = SerialHistory::from_order(order);
        let empty = VarSet::new();
        let out = compact(&mut arena, &hm, &empty, &empty, &CompactionConfig::enabled());
        assert_eq!(out.txns_in, 5);
        assert_eq!(out.txns_out, 3, "three a0 deposits collapse into one");
        assert_eq!(out.runs_squashed, 1);
        assert_eq!(out.composites.len(), 1);
        let (cid, members) = &out.composites[0];
        assert_eq!(members, &[order[0], order[2], order[4]]);
        // Composite anchored at the first member's position.
        assert_eq!(out.history.order()[0], *cid);
        // Masks are exactly the union of the constituents'.
        let c = arena.get(*cid);
        let mut union = VarSet::new();
        for m in members {
            union.extend_from(arena.get(*m).footprint());
        }
        assert_eq!(c.footprint(), &union);
        // Final state unchanged.
        let s0 = state(3, 100);
        let legacy = run_to_final(&arena, &hm, &s0).unwrap();
        let compacted = run_to_final(&arena, &out.history, &s0).unwrap();
        assert_eq!(legacy, compacted);
        // The composite inherits an inverse (every deposit has one).
        assert!(c.inverse().is_some());
    }

    #[test]
    fn adjacent_mode_only_takes_contiguous_runs() {
        let mut arena = TxnArena::new();
        let order = [
            deposit(&mut arena, v(0), 10),
            deposit(&mut arena, v(1), 5),
            deposit(&mut arena, v(0), 20),
            deposit(&mut arena, v(0), 40),
        ];
        let hm = SerialHistory::from_order(order);
        let empty = VarSet::new();
        let cfg = CompactionConfig { enabled: true, mode: CompactionMode::Adjacent, min_run: 2 };
        let out = compact(&mut arena, &hm, &empty, &empty, &cfg);
        // Only the contiguous pair at positions 2..4 squashes.
        assert_eq!(out.txns_out, 3);
        assert_eq!(out.composites[0].1, &order[2..4]);
        let s0 = state(2, 50);
        assert_eq!(
            run_to_final(&arena, &hm, &s0).unwrap(),
            run_to_final(&arena, &out.history, &s0).unwrap()
        );
    }

    #[test]
    fn preconditioned_member_splits_its_cluster() {
        let mut arena = TxnArena::new();
        // d(a0) w(a0) d(a0): the withdraw is a cluster member the deposits
        // may not be gathered across, and is itself never absorbed.
        let order = [
            deposit(&mut arena, v(0), 10),
            withdraw(&mut arena, v(0), 5),
            deposit(&mut arena, v(0), 20),
        ];
        let hm = SerialHistory::from_order(order);
        let empty = VarSet::new();
        let out = compact(&mut arena, &hm, &empty, &empty, &CompactionConfig::enabled());
        assert_eq!(out.txns_out, 3, "nothing squashable around the withdraw");
        assert_eq!(out.runs_squashed, 0);
        assert_eq!(out.history.order(), hm.order());
    }

    #[test]
    fn base_conflict_disables_the_whole_cluster() {
        let mut arena = TxnArena::new();
        let order = [
            deposit(&mut arena, v(0), 10),
            deposit(&mut arena, v(0), 20),
            deposit(&mut arena, v(1), 5),
            deposit(&mut arena, v(1), 15),
        ];
        let hm = SerialHistory::from_order(order);
        // The base wrote account 0: that cluster is not isolated; the
        // account-1 cluster still squashes.
        let hb_writes: VarSet = [v(0)].into_iter().collect();
        let hb_reads = hb_writes.clone();
        let out = compact(&mut arena, &hm, &hb_reads, &hb_writes, &CompactionConfig::enabled());
        assert_eq!(out.runs_squashed, 1);
        assert_eq!(out.composites[0].1, &order[2..4]);
        assert_eq!(out.txns_out, 3);
    }

    #[test]
    fn compaction_is_idempotent() {
        let mut arena = TxnArena::new();
        let order = [
            deposit(&mut arena, v(0), 1),
            deposit(&mut arena, v(1), 2),
            deposit(&mut arena, v(0), 3),
            withdraw(&mut arena, v(1), 1),
            deposit(&mut arena, v(1), 4),
        ];
        let hm = SerialHistory::from_order(order);
        let empty = VarSet::new();
        let cfg = CompactionConfig::enabled();
        let once = compact(&mut arena, &hm, &empty, &empty, &cfg);
        let twice = compact(&mut arena, &once.history, &empty, &empty, &cfg);
        assert_eq!(twice.history.order(), once.history.order());
        assert_eq!(twice.runs_squashed, 0);
        assert_eq!(twice.txns_in, twice.txns_out);
    }

    #[test]
    fn disabled_or_short_histories_are_identity() {
        let mut arena = TxnArena::new();
        let order = [deposit(&mut arena, v(0), 1), deposit(&mut arena, v(0), 2)];
        let hm = SerialHistory::from_order(order);
        let empty = VarSet::new();
        let off = compact(&mut arena, &hm, &empty, &empty, &CompactionConfig::default());
        assert_eq!(off.history.order(), hm.order());
        assert_eq!(off.runs_squashed, 0);
        let one = SerialHistory::from_order([order[0]]);
        let short = compact(&mut arena, &one, &empty, &empty, &CompactionConfig::enabled());
        assert_eq!(short.history.order(), one.order());
    }

    #[test]
    fn composite_compensation_equals_reverse_constituent_compensation() {
        use histmerge_txn::Fix;
        let mut arena = TxnArena::new();
        let order = [
            deposit(&mut arena, v(0), 10),
            deposit(&mut arena, v(0), 25),
            deposit(&mut arena, v(0), 40),
        ];
        let hm = SerialHistory::from_order(order);
        let empty = VarSet::new();
        let out = compact(&mut arena, &hm, &empty, &empty, &CompactionConfig::enabled());
        assert_eq!(out.runs_squashed, 1);
        let cid = out.composites[0].0;
        let s0 = state(1, 500);
        let after = run_to_final(&arena, &out.history, &s0).unwrap();
        // Composite compensation in one shot …
        let undone = arena.get(cid).compensate(&after, &Fix::empty()).unwrap().after;
        // … equals compensating the constituents in reverse.
        let mut manual = after.clone();
        for id in order.iter().rev() {
            manual = arena.get(*id).compensate(&manual, &Fix::empty()).unwrap().after;
        }
        assert_eq!(undone, manual);
        assert_eq!(undone, s0);
    }

    #[test]
    fn semantic_oracle_widens_gathering_past_blockers() {
        use crate::static_analyzer::StaticAnalyzer;
        use histmerge_txn::{Expr, ProgramBuilder};
        let mut arena = TxnArena::new();
        // d(+10) [if flag > 0 then acct += 5] d(+20): the guarded bonus is
        // a same-cluster member (it writes the account) with a
        // precondition, so it is never absorbed and blocks the mask-only
        // gather. It *commutes* with plain deposits — its guard reads only
        // the untouched flag — which the static analyzer proves, letting
        // the oracle-widened pass jump it.
        let acct = v(0);
        let flag = v(1);
        let bonus = {
            let fwd: Arc<Program> = Arc::new(
                ProgramBuilder::new("bonus")
                    .read(flag)
                    .read(acct)
                    .branch(
                        Expr::var(flag).gt(Expr::konst(0)),
                        |b| b.update(acct, Expr::var(acct) + Expr::konst(5)),
                        |b| b,
                    )
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| {
                Transaction::new(id, "bonus", TxnKind::Tentative, fwd.clone(), vec![])
                    .with_precondition(Expr::var(flag).gt(Expr::konst(0)))
            })
        };
        let order = [deposit(&mut arena, acct, 10), bonus, deposit(&mut arena, acct, 20)];
        let hm = SerialHistory::from_order(order);
        let empty = VarSet::new();
        let cfg = CompactionConfig::enabled();
        let masked = compact(&mut arena, &hm, &empty, &empty, &cfg);
        assert_eq!(masked.runs_squashed, 0, "mask-only cannot jump the bonus");
        let oracle = StaticAnalyzer::new();
        let widened = compact_with_oracle(&mut arena, &hm, &empty, &empty, &cfg, Some(&oracle));
        assert_eq!(widened.runs_squashed, 1, "deposits commute past the bonus");
        assert_eq!(widened.composites[0].1, vec![order[0], order[2]]);
        // Final state still equals the original order's.
        let s0 = state(2, 7);
        assert_eq!(
            run_to_final(&arena, &hm, &s0).unwrap(),
            run_to_final(&arena, &widened.history, &s0).unwrap()
        );
    }
}
