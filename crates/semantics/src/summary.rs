//! Static program summaries used by the [`StaticAnalyzer`].
//!
//! A summary reduces each update statement to an *operation class* over its
//! target item, together with the guard variables dominating it and the
//! non-target operand variables it reads. Operation classes are chosen so
//! that class-level commutativity is decidable:
//!
//! * two increments of the same item commute (addition is commutative and
//!   associative);
//! * two scalings commute (multiplication likewise);
//! * two `min`-caps commute, as do two `max`-floors;
//! * everything else is [`OpClass::Other`], for which the analyzer stays
//!   conservative.
//!
//! [`StaticAnalyzer`]: crate::StaticAnalyzer

use histmerge_txn::{Expr, Statement, Transaction, Value, VarId, VarSet};

/// Classification of a single update statement's effect on its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpClass {
    /// `x := x + e` (or `x := x - e`): increment by an amount independent
    /// of `x`.
    Increment,
    /// `x := x * e`: scale by a factor independent of `x`.
    Scale,
    /// `x := min(x, e)`: cap at a bound independent of `x`.
    MinCap,
    /// `x := max(x, e)`: floor at a bound independent of `x`.
    MaxFloor,
    /// `x := e` where `e` does not reference `x`: overwrite.
    Overwrite,
    /// Anything else (e.g. `x := x * x`).
    Other,
}

impl OpClass {
    /// Returns `true` if two updates of these classes on the same item
    /// commute regardless of their amounts.
    ///
    /// Only same-class pairs within {Increment, Scale, MinCap, MaxFloor}
    /// commute unconditionally; overwrites commute with nothing (not even
    /// other overwrites, whose order picks the surviving value).
    pub fn commutes_with(&self, other: &OpClass) -> bool {
        use OpClass::*;
        matches!(
            (self, other),
            (Increment, Increment) | (Scale, Scale) | (MinCap, MinCap) | (MaxFloor, MaxFloor)
        )
    }
}

/// Summary of one update statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateSummary {
    /// The item written.
    pub target: VarId,
    /// The effect class.
    pub op: OpClass,
    /// Variables appearing in guards that dominate this update.
    pub guard_vars: VarSet,
    /// Non-target variables the update's amount/bound expression reads.
    pub operand_vars: VarSet,
}

/// Summary of a whole transaction: every update on every path, plus the
/// union of all guard variables.
#[derive(Debug, Clone, Default)]
pub struct TxnSummary {
    /// One entry per update statement (all paths).
    pub updates: Vec<UpdateSummary>,
    /// Union of variables read by any guard in the program.
    pub all_guard_vars: VarSet,
}

impl TxnSummary {
    /// Builds the summary of a transaction's program.
    pub fn of(txn: &Transaction) -> TxnSummary {
        let mut summary = TxnSummary::default();
        collect(txn.program().statements(), &VarSet::new(), txn.params(), &mut summary);
        summary
    }

    /// All update summaries targeting `var`.
    pub fn updates_of(&self, var: VarId) -> impl Iterator<Item = &UpdateSummary> + '_ {
        self.updates.iter().filter(move |u| u.target == var)
    }

    /// Union of operand variables across all updates targeting `var`.
    pub fn operands_of(&self, var: VarId) -> VarSet {
        let mut out = VarSet::new();
        for u in self.updates_of(var) {
            out.extend_from(&u.operand_vars);
        }
        out
    }
}

fn collect(stmts: &[Statement], guards: &VarSet, params: &[Value], out: &mut TxnSummary) {
    for stmt in stmts {
        match stmt {
            Statement::Read(_) => {}
            Statement::Update { target, expr } => {
                let op = classify(*target, expr);
                let mut operand_vars = expr.vars();
                operand_vars.remove(*target);
                out.updates.push(UpdateSummary {
                    target: *target,
                    op,
                    guard_vars: guards.clone(),
                    operand_vars,
                });
                // `params` reserved for future constant folding of amounts.
                let _ = params;
            }
            Statement::If { cond, then_branch, else_branch } => {
                let cond_vars = cond.vars();
                out.all_guard_vars.extend_from(&cond_vars);
                let inner = guards.union(&cond_vars);
                collect(then_branch, &inner, params, out);
                collect(else_branch, &inner, params, out);
            }
        }
    }
}

/// Classifies `target := expr`.
fn classify(target: VarId, expr: &Expr) -> OpClass {
    if !expr.vars().contains(target) {
        return OpClass::Overwrite;
    }
    match expr {
        // x + e / e + x with e independent of x.
        Expr::Add(a, b) => match (is_var(a, target), is_var(b, target)) {
            (true, false) if !b.vars().contains(target) => OpClass::Increment,
            (false, true) if !a.vars().contains(target) => OpClass::Increment,
            _ => OpClass::Other,
        },
        // x - e with e independent of x.
        Expr::Sub(a, b) if is_var(a, target) && !b.vars().contains(target) => OpClass::Increment,
        // x * e / e * x.
        Expr::Mul(a, b) => match (is_var(a, target), is_var(b, target)) {
            (true, false) if !b.vars().contains(target) => OpClass::Scale,
            (false, true) if !a.vars().contains(target) => OpClass::Scale,
            _ => OpClass::Other,
        },
        Expr::Min(a, b) => match (is_var(a, target), is_var(b, target)) {
            (true, false) if !b.vars().contains(target) => OpClass::MinCap,
            (false, true) if !a.vars().contains(target) => OpClass::MinCap,
            _ => OpClass::Other,
        },
        Expr::Max(a, b) => match (is_var(a, target), is_var(b, target)) {
            (true, false) if !b.vars().contains(target) => OpClass::MaxFloor,
            (false, true) if !a.vars().contains(target) => OpClass::MaxFloor,
            _ => OpClass::Other,
        },
        _ => OpClass::Other,
    }
}

fn is_var(e: &Expr, v: VarId) -> bool {
    matches!(e, Expr::Var(x) if *x == v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{ProgramBuilder, TxnId, TxnKind};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn summarize(build: impl FnOnce(ProgramBuilder) -> ProgramBuilder) -> TxnSummary {
        let p = build(ProgramBuilder::new("t")).build().unwrap();
        let t = Transaction::new(TxnId::new(0), "t", TxnKind::Tentative, Arc::new(p), vec![]);
        TxnSummary::of(&t)
    }

    #[test]
    fn classify_increment_forms() {
        let s = summarize(|b| {
            b.read(v(0))
                .read(v(1))
                .update(v(0), Expr::var(v(0)) + Expr::param(0))
                .update(v(1), Expr::konst(5) + Expr::var(v(1)))
        });
        assert_eq!(s.updates[0].op, OpClass::Increment);
        assert_eq!(s.updates[1].op, OpClass::Increment);
    }

    #[test]
    fn classify_subtract_is_increment() {
        let s = summarize(|b| b.read(v(0)).update(v(0), Expr::var(v(0)) - Expr::konst(3)));
        assert_eq!(s.updates[0].op, OpClass::Increment);
    }

    #[test]
    fn classify_scale_min_max() {
        let s = summarize(|b| {
            b.read(v(0))
                .read(v(1))
                .read(v(2))
                .update(v(0), Expr::var(v(0)) * Expr::konst(2))
                .update(v(1), Expr::var(v(1)).min(Expr::konst(10)))
                .update(v(2), Expr::var(v(2)).max(Expr::konst(0)))
        });
        assert_eq!(s.updates[0].op, OpClass::Scale);
        assert_eq!(s.updates[1].op, OpClass::MinCap);
        assert_eq!(s.updates[2].op, OpClass::MaxFloor);
    }

    #[test]
    fn classify_overwrite_and_other() {
        let s = summarize(|b| {
            b.read(v(0))
                .read(v(1))
                .update(v(0), Expr::var(v(1)) + Expr::konst(1)) // no self-reference
                .update(v(1), Expr::var(v(1)) * Expr::var(v(1))) // x*x
        });
        assert_eq!(s.updates[0].op, OpClass::Overwrite);
        assert_eq!(s.updates[1].op, OpClass::Other);
    }

    #[test]
    fn classify_sub_from_const_is_other() {
        // x := 10 - x depends on x but is not an increment.
        let s = summarize(|b| b.read(v(0)).update(v(0), Expr::konst(10) - Expr::var(v(0))));
        assert_eq!(s.updates[0].op, OpClass::Other);
    }

    #[test]
    fn guards_and_operands_recorded() {
        let s = summarize(|b| {
            b.read(v(0)).read(v(1)).read(v(2)).branch(
                Expr::var(v(2)).gt(Expr::konst(0)),
                |t| t.update(v(0), Expr::var(v(0)) + Expr::var(v(1))),
                |t| t,
            )
        });
        let u = &s.updates[0];
        assert_eq!(u.guard_vars, [v(2)].into_iter().collect());
        assert_eq!(u.operand_vars, [v(1)].into_iter().collect());
        assert_eq!(s.all_guard_vars, [v(2)].into_iter().collect());
        assert_eq!(s.operands_of(v(0)), [v(1)].into_iter().collect());
        assert_eq!(s.updates_of(v(0)).count(), 1);
        assert_eq!(s.updates_of(v(5)).count(), 0);
    }

    #[test]
    fn nested_guards_accumulate() {
        let s = summarize(|b| {
            b.read(v(0)).read(v(1)).read(v(2)).branch(
                Expr::var(v(1)).gt(Expr::konst(0)),
                |t| {
                    t.branch(
                        Expr::var(v(2)).lt(Expr::konst(5)),
                        |u| u.update(v(0), Expr::var(v(0)) + Expr::konst(1)),
                        |u| u,
                    )
                },
                |t| t,
            )
        });
        assert_eq!(s.updates[0].guard_vars, [v(1), v(2)].into_iter().collect());
    }

    #[test]
    fn op_class_commutation_table() {
        use OpClass::*;
        assert!(Increment.commutes_with(&Increment));
        assert!(Scale.commutes_with(&Scale));
        assert!(MinCap.commutes_with(&MinCap));
        assert!(MaxFloor.commutes_with(&MaxFloor));
        assert!(!Increment.commutes_with(&Scale));
        assert!(!MinCap.commutes_with(&MaxFloor));
        assert!(!Overwrite.commutes_with(&Overwrite));
        assert!(!Other.commutes_with(&Other));
        assert!(!Other.commutes_with(&Increment));
    }
}
