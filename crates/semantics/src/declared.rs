//! Declared relation tables for canned systems.
//!
//! Section 5.1: "For canned systems ... transactions are of limited number
//! of types and the code of each transaction type is available, so the can
//! precede relation between two transactions can be pre-detected by
//! detecting the relation between the corresponding two transaction types
//! in advance."
//!
//! A [`DeclaredTable`] stores, per *(mover type, stayer type)* pair, whether
//! the mover commutes backward through the stayer, and a
//! [`CanPrecedePolicy`] describing how fixes affect the relation. This is
//! how the `H5` subtlety is expressed: `T3` commutes backward through `T1`,
//! but only while no fix pins `T1`'s guard variable `y` — policy
//! [`CanPrecedePolicy::UnlessFixPinsGuards`].

use std::collections::BTreeMap;

use histmerge_txn::registry::TxnTypeId;
use histmerge_txn::{Transaction, VarSet};

use crate::oracle::SemanticOracle;
use crate::summary::TxnSummary;

/// How a declared pair behaves in the presence of a fix on the stayer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanPrecedePolicy {
    /// The relation never holds with or without a fix.
    Never,
    /// The relation holds for every fix (Definition 4 verified offline for
    /// arbitrary pinned values).
    Always,
    /// The relation holds only while the fix does not pin any guard
    /// variable of the stayer's program — the offline verification relied
    /// on correlated guards, which a pinned guard breaks (history `H5`).
    UnlessFixPinsGuards,
}

/// A symmetric-looking but directional table of declared relations between
/// canned transaction types.
///
/// # Soundness contract
///
/// Entries are trusted: declaring a pair asserts the relation was verified
/// offline (the workspace's canned library validates its declarations with
/// differential tests). Transactions without a type id never match.
///
/// # Example
///
/// ```rust
/// use histmerge_semantics::{CanPrecedePolicy, DeclaredTable};
/// use histmerge_txn::registry::TypeRegistry;
///
/// let mut reg = TypeRegistry::new();
/// let deposit = reg.register("deposit");
/// let withdraw = reg.register("withdraw");
/// let table = DeclaredTable::new()
///     .declare(deposit, withdraw, true, CanPrecedePolicy::Always)
///     .declare_commuting_pair(deposit, deposit, CanPrecedePolicy::Always);
/// assert!(table.is_declared(deposit, withdraw));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeclaredTable {
    /// (mover, stayer) → (commutes backward through, can-precede policy).
    entries: BTreeMap<(TxnTypeId, TxnTypeId), (bool, CanPrecedePolicy)>,
}

impl DeclaredTable {
    /// Creates an empty table (answers `false` to everything).
    pub fn new() -> Self {
        DeclaredTable::default()
    }

    /// Declares that `mover` commutes backward through `stayer` (when
    /// `commutes` is true) with the given fix policy.
    #[must_use]
    pub fn declare(
        mut self,
        mover: TxnTypeId,
        stayer: TxnTypeId,
        commutes: bool,
        policy: CanPrecedePolicy,
    ) -> Self {
        self.entries.insert((mover, stayer), (commutes, policy));
        self
    }

    /// Declares both directions at once (full commutativity).
    #[must_use]
    pub fn declare_commuting_pair(
        self,
        a: TxnTypeId,
        b: TxnTypeId,
        policy: CanPrecedePolicy,
    ) -> Self {
        self.declare(a, b, true, policy).declare(b, a, true, policy)
    }

    /// Returns `true` if the (mover, stayer) pair has any declaration.
    pub fn is_declared(&self, mover: TxnTypeId, stayer: TxnTypeId) -> bool {
        self.entries.contains_key(&(mover, stayer))
    }

    /// Number of declared (directional) pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lookup(&self, t2: &Transaction, t1: &Transaction) -> Option<(bool, CanPrecedePolicy)> {
        let (m, s) = (t2.type_id()?, t1.type_id()?);
        self.entries.get(&(m, s)).copied()
    }
}

impl SemanticOracle for DeclaredTable {
    fn commutes_backward_through(&self, t2: &Transaction, t1: &Transaction) -> bool {
        self.lookup(t2, t1).map(|(c, _)| c).unwrap_or(false)
    }

    fn can_precede(&self, t2: &Transaction, t1: &Transaction, fix_vars: &VarSet) -> bool {
        match self.lookup(t2, t1) {
            Some((_, CanPrecedePolicy::Always)) => true,
            Some((_, CanPrecedePolicy::UnlessFixPinsGuards)) => {
                let guards = TxnSummary::of(t1).all_guard_vars;
                !fix_vars.intersects(&guards)
            }
            Some((_, CanPrecedePolicy::Never)) | None => false,
        }
    }

    fn name(&self) -> &'static str {
        "declared-table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::registry::TypeRegistry;
    use histmerge_txn::{Expr, ProgramBuilder, TxnId, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    /// H5's T1 (guarded by y = d1) tagged with a type.
    fn h5_t1(ty: TxnTypeId) -> Transaction {
        let p = ProgramBuilder::new("T1")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(1)).gt(Expr::konst(200)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(100)),
                |b| b.update(v(0), Expr::var(v(0)) * Expr::konst(2)),
            )
            .build()
            .unwrap();
        Transaction::new(TxnId::new(0), "T1", TxnKind::Tentative, Arc::new(p), vec![]).with_type(ty)
    }

    fn h5_t3(ty: TxnTypeId) -> Transaction {
        let p = ProgramBuilder::new("T3")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(1)).gt(Expr::konst(200)),
                |b| b.update(v(0), Expr::var(v(0)) - Expr::konst(10)),
                |b| b.update(v(0), Expr::var(v(0)) / Expr::konst(2)),
            )
            .build()
            .unwrap();
        Transaction::new(TxnId::new(1), "T3", TxnKind::Tentative, Arc::new(p), vec![]).with_type(ty)
    }

    #[test]
    fn h5_policy_blocks_guard_pinning_fix() {
        let mut reg = TypeRegistry::new();
        let ty1 = reg.register("t1");
        let ty3 = reg.register("t3");
        // Offline analysis of H5: T3 commutes backward through T1, but the
        // verification leaned on the shared guard over y.
        let table =
            DeclaredTable::new().declare(ty3, ty1, true, CanPrecedePolicy::UnlessFixPinsGuards);
        let (t1, t3) = (h5_t1(ty1), h5_t3(ty3));
        assert!(table.commutes_backward_through(&t3, &t1));
        // Fix over a non-guard variable: fine.
        assert!(table.can_precede(&t3, &t1, &[v(5)].into_iter().collect()));
        // Fix pinning y (the guard): exactly the paper's counterexample.
        assert!(!table.can_precede(&t3, &t1, &[v(1)].into_iter().collect()));
        // Empty fix: fine.
        assert!(table.can_precede(&t3, &t1, &VarSet::new()));
    }

    #[test]
    fn undeclared_and_untyped_pairs_deny() {
        let mut reg = TypeRegistry::new();
        let ty1 = reg.register("t1");
        let ty3 = reg.register("t3");
        let table = DeclaredTable::new();
        assert!(table.is_empty());
        assert!(!table.commutes_backward_through(&h5_t3(ty3), &h5_t1(ty1)));
        // Untyped transaction never matches.
        let t1_untyped = {
            let t = h5_t1(ty1);
            Transaction::new(
                t.id(),
                t.name().to_string(),
                t.kind(),
                t.program().clone(),
                t.params().to_vec(),
            )
        };
        let full = DeclaredTable::new().declare(ty3, ty1, true, CanPrecedePolicy::Always);
        assert!(!full.commutes_backward_through(&h5_t3(ty3), &t1_untyped));
        assert!(!full.can_precede(&h5_t3(ty3), &t1_untyped, &VarSet::new()));
    }

    #[test]
    fn policies() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let (ta, tb) = (h5_t1(a), h5_t3(b));
        let never = DeclaredTable::new().declare(b, a, true, CanPrecedePolicy::Never);
        assert!(never.commutes_backward_through(&tb, &ta));
        assert!(!never.can_precede(&tb, &ta, &VarSet::new()));
        let always = DeclaredTable::new().declare(b, a, false, CanPrecedePolicy::Always);
        assert!(!always.commutes_backward_through(&tb, &ta));
        assert!(always.can_precede(&tb, &ta, &[v(1)].into_iter().collect()));
    }

    #[test]
    fn commuting_pair_declares_both_directions() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let table = DeclaredTable::new().declare_commuting_pair(a, b, CanPrecedePolicy::Always);
        assert_eq!(table.len(), 2);
        assert!(table.is_declared(a, b));
        assert!(table.is_declared(b, a));
        assert_eq!(table.name(), "declared-table");
    }
}
