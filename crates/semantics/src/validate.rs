//! Offline validation of declared relation tables.
//!
//! Section 5.1 assumes canned systems pre-detect semantic relations
//! "in advance" — which implies a verification step someone must run.
//! [`validate_declarations`] is that step: it differentially tests every
//! declared relation over representative transaction instances and reports
//! the declarations the tester could refute. Run it whenever the canned
//! transaction library or the table changes.

use histmerge_txn::{Transaction, VarSet};

use crate::declared::DeclaredTable;
use crate::oracle::SemanticOracle;
use crate::random_tester::RandomizedTester;

/// A declaration the differential tester refuted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the moving transaction instance.
    pub mover: String,
    /// Name of the staying transaction instance.
    pub stayer: String,
    /// Which declared relation failed.
    pub relation: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "declared {} of `{}` through `{}` was refuted",
            self.relation, self.mover, self.stayer
        )
    }
}

/// Differentially tests every declared relation over all ordered pairs of
/// `instances`, including the empty fix and a fix over the stayer's pure
/// reads. Returns the refuted declarations (empty means the table passed).
///
/// The tester is probabilistic: passing is evidence, not proof; a refuted
/// declaration is definitely wrong.
pub fn validate_declarations(
    table: &DeclaredTable,
    instances: &[Transaction],
    tester: &RandomizedTester,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for mover in instances {
        for stayer in instances {
            let (Some(m_ty), Some(s_ty)) = (mover.type_id(), stayer.type_id()) else {
                continue;
            };
            if !table.is_declared(m_ty, s_ty) {
                continue;
            }
            if table.commutes_backward_through(mover, stayer)
                && !tester.commutes_backward_through(mover, stayer)
            {
                violations.push(Violation {
                    mover: mover.name().to_string(),
                    stayer: stayer.name().to_string(),
                    relation: "commutes-backward-through",
                });
            }
            for fix in [VarSet::new(), stayer.read_only_set()] {
                if table.can_precede(mover, stayer, &fix)
                    && !tester.can_precede(mover, stayer, &fix)
                {
                    violations.push(Violation {
                        mover: mover.name().to_string(),
                        stayer: stayer.name().to_string(),
                        relation: "can-precede",
                    });
                    break;
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declared::CanPrecedePolicy;
    use histmerge_txn::registry::TypeRegistry;
    use histmerge_txn::{Expr, ProgramBuilder, TxnId, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn typed_txn(
        name: &str,
        ty: histmerge_txn::registry::TxnTypeId,
        build: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
    ) -> Transaction {
        let p = build(ProgramBuilder::new(name)).build().unwrap();
        Transaction::new(TxnId::new(0), name, TxnKind::Tentative, Arc::new(p), vec![]).with_type(ty)
    }

    #[test]
    fn sound_table_passes() {
        let mut reg = TypeRegistry::new();
        let inc = reg.register("inc");
        let table = DeclaredTable::new().declare_commuting_pair(inc, inc, CanPrecedePolicy::Always);
        let a =
            typed_txn("a", inc, |b| b.read(v(0)).update(v(0), Expr::var(v(0)) + Expr::konst(3)));
        let b =
            typed_txn("b", inc, |b| b.read(v(0)).update(v(0), Expr::var(v(0)) + Expr::konst(9)));
        let tester = RandomizedTester::with_config(64, 500, 1);
        assert!(validate_declarations(&table, &[a, b], &tester).is_empty());
    }

    #[test]
    fn bogus_commutation_is_refuted() {
        let mut reg = TypeRegistry::new();
        let setter = reg.register("set");
        // Overwrites never commute, but someone declared they do.
        let table =
            DeclaredTable::new().declare_commuting_pair(setter, setter, CanPrecedePolicy::Always);
        let a = typed_txn("set1", setter, |b| {
            b.read(v(0)).update(v(0), Expr::konst(1) + Expr::konst(0))
        });
        let b = typed_txn("set2", setter, |b| {
            b.read(v(0)).update(v(0), Expr::konst(2) + Expr::konst(0))
        });
        let tester = RandomizedTester::with_config(64, 500, 1);
        let violations = validate_declarations(&table, &[a, b], &tester);
        assert!(!violations.is_empty());
        assert!(violations.iter().any(|x| x.relation == "commutes-backward-through"));
        assert!(violations.iter().any(|x| x.relation == "can-precede"));
        assert!(violations[0].to_string().contains("refuted"));
    }

    #[test]
    fn untyped_instances_skipped() {
        let mut reg = TypeRegistry::new();
        let ty = reg.register("t");
        let table = DeclaredTable::new().declare_commuting_pair(ty, ty, CanPrecedePolicy::Always);
        let p = ProgramBuilder::new("u")
            .read(v(0))
            .update(v(0), Expr::konst(1) + Expr::konst(0))
            .build()
            .unwrap();
        let untyped = Transaction::new(TxnId::new(0), "u", TxnKind::Tentative, Arc::new(p), vec![]);
        let tester = RandomizedTester::new();
        assert!(validate_declarations(&table, &[untyped], &tester).is_empty());
    }
}
