//! Transaction-semantics oracles for `histmerge`.
//!
//! The paper's rewriting algorithms consult three semantic relations:
//!
//! * **can follow** (Definition 3) — purely syntactic:
//!   `T` can follow a sequence `R` iff `T.writeset ∩ R.readset = ∅`;
//!   implemented in [`canfollow`].
//! * **commutes backward through** ([Wei88, LMWF94], footnote in
//!   Section 5.1) — `T2` commutes backward through `T1` iff
//!   `T2(T1(s)) = T1(T2(s))` wherever `T1 T2` is defined.
//! * **can precede** (Definition 4) — the fix-aware refinement: `T2` can
//!   precede `T1^F` iff for *any* assignment of values to the fix `F` and
//!   any state, `T1^F T2` and `T2 T1^F` produce the same final state.
//!
//! The latter two are semantic properties of transaction *code*, so the
//! crate provides the three detection back-ends Section 5.1 enumerates:
//!
//! | Paper scenario | Back-end |
//! |---|---|
//! | canned systems: relations pre-detected between transaction types | [`DeclaredTable`] |
//! | codes recorded, detected at repair time by analysis | [`StaticAnalyzer`] |
//! | detection by (possibly manual) inspection/testing | [`RandomizedTester`] |
//!
//! [`StaticAnalyzer`] is **conservative**: every `true` it returns is sound
//! (property-tested against differential execution), but it may say `false`
//! for relations that hold only through correlated guards — exactly the
//! `H5` subtlety of Section 5.1, which [`DeclaredTable`] or
//! [`RandomizedTester`] can capture instead. [`OracleStack`] composes
//! back-ends (any sound layer answering `true` wins).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canfollow;
pub mod compact;
mod declared;
mod oracle;
mod property1;
mod random_tester;
mod static_analyzer;
pub mod summary;
pub mod validate;

pub use compact::{
    compact, compact_with_oracle, CompactionConfig, CompactionMode, CompactionOutcome,
};
pub use declared::{CanPrecedePolicy, DeclaredTable};
pub use oracle::{OracleStack, SemanticOracle};
pub use property1::satisfies_property1;
pub use random_tester::RandomizedTester;
pub use static_analyzer::StaticAnalyzer;
