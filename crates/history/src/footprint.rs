//! Dense footprint bitsets over a per-arena variable index.
//!
//! [`TxnArena`](crate::TxnArena) interns every variable a transaction's
//! static read/write set touches into a dense index (first-seen order at
//! allocation) and keeps each transaction's footprint as a [`DenseBits`]
//! word vector over that index. The merge hot path — precedence rules
//! 1/2/3, the base-edge cache, the reads-from closure, batch delta
//! validation — then answers every "do these sets overlap?" question with
//! word-wise ANDs instead of `BTreeSet` walks.
//!
//! `VarSet` stays the public vocabulary type; the bitsets are the
//! arena-internal fast path, and differential tests
//! (`tests/footprint_differential.rs`) pin the two representations to
//! identical answers.

use histmerge_txn::VarSet;

/// A growable bitset over dense variable indices.
///
/// Bitsets built against the same interner are comparable word-by-word;
/// sets interned at different times may have different lengths (the
/// interner only grows), so every binary operation treats missing tail
/// words as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBits {
    words: Vec<u64>,
}

impl DenseBits {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        DenseBits::default()
    }

    /// Sets bit `i`, growing the word vector as needed.
    pub fn set(&mut self, i: u32) {
        let word = (i / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (i % 64);
    }

    /// Tests bit `i`.
    pub fn get(&self, i: u32) -> bool {
        let word = (i / 64) as usize;
        self.words.get(word).is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Word-wise AND-any: `true` if the two bitsets share a set bit.
    pub fn intersects(&self, other: &DenseBits) -> bool {
        self.words.iter().zip(other.words.iter()).any(|(a, b)| a & b != 0)
    }

    /// Word-wise OR of `other` into `self`, growing as needed.
    pub fn union_with(&mut self, other: &DenseBits) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Iterates the indices of the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let w = *w;
            (0..64).filter(move |b| w & (1u64 << b) != 0).map(move |b| (wi as u32) * 64 + b)
        })
    }

    /// The backing words (trailing words may be zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Interns [`VarId`](histmerge_txn::VarId)s into dense bit indices, in
/// first-seen order.
#[derive(Debug, Clone, Default)]
pub struct VarInterner {
    index: std::collections::BTreeMap<histmerge_txn::VarId, u32>,
}

impl VarInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        VarInterner::default()
    }

    /// Returns the dense index of `var`, interning it if new.
    pub fn intern(&mut self, var: histmerge_txn::VarId) -> u32 {
        let next = self.index.len() as u32;
        *self.index.entry(var).or_insert(next)
    }

    /// The dense index of `var`, if it has been interned.
    pub fn lookup(&self, var: histmerge_txn::VarId) -> Option<u32> {
        self.index.get(&var).copied()
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Interns every member of `set` and returns its bitset.
    pub fn intern_set(&mut self, set: &VarSet) -> DenseBits {
        let mut bits = DenseBits::new();
        for var in set.iter() {
            bits.set(self.intern(var));
        }
        bits
    }

    /// The bitset of `set` over the *current* index, skipping variables
    /// never interned (they cannot overlap any interned footprint).
    pub fn bits_of(&self, set: &VarSet) -> DenseBits {
        let mut bits = DenseBits::new();
        for var in set.iter() {
            if let Some(i) = self.lookup(var) {
                bits.set(i);
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::VarId;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn dense_bits_roundtrip() {
        let mut b = DenseBits::new();
        assert!(b.is_empty());
        b.set(0);
        b.set(70);
        assert!(b.get(0));
        assert!(b.get(70));
        assert!(!b.get(1));
        assert!(!b.get(200));
        assert_eq!(b.count(), 2);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 70]);
        assert_eq!(b.words().len(), 2);
    }

    #[test]
    fn union_with_grows_and_ors() {
        let mut a = DenseBits::new();
        a.set(3);
        let mut b = DenseBits::new();
        b.set(100);
        a.union_with(&b);
        assert!(a.get(3));
        assert!(a.get(100));
        assert_eq!(a.count(), 2);
        // Union the short set into the long one: no shrink, no loss.
        b.union_with(&DenseBits::new());
        assert!(b.get(100));
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn intersects_handles_length_mismatch() {
        let mut short = DenseBits::new();
        short.set(3);
        let mut long = DenseBits::new();
        long.set(100);
        assert!(!short.intersects(&long));
        assert!(!long.intersects(&short));
        long.set(3);
        assert!(short.intersects(&long));
        assert!(long.intersects(&short));
    }

    #[test]
    fn interner_is_first_seen_order() {
        let mut it = VarInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.intern(v(9)), 0);
        assert_eq!(it.intern(v(2)), 1);
        assert_eq!(it.intern(v(9)), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.lookup(v(2)), Some(1));
        assert_eq!(it.lookup(v(7)), None);
    }

    #[test]
    fn bits_of_skips_foreign_vars() {
        let mut it = VarInterner::new();
        let set: VarSet = [v(1), v(2)].into_iter().collect();
        let interned = it.intern_set(&set);
        assert_eq!(interned.count(), 2);
        let probe: VarSet = [v(2), v(99)].into_iter().collect();
        let bits = it.bits_of(&probe);
        assert_eq!(bits.count(), 1);
        assert!(bits.intersects(&interned));
        assert_eq!(it.len(), 2, "bits_of must not intern");
    }
}
