//! Interleaved (operation-level) schedules and conflict serializability.
//!
//! Section 3 of the paper assumes each history to be merged "is
//! serializable and there is an explicit serial history `H^s` of `H`".
//! Mobile nodes, however, execute transactions *interleaved* at the
//! operation level. This module supplies the missing substrate: an
//! operation-level [`InterleavedSchedule`], the classical serialization
//! graph, a conflict-serializability test, and extraction of the explicit
//! serial history the rewriting algorithms consume.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use histmerge_txn::{TxnId, VarId};

use crate::schedule::SerialHistory;

/// One operation of an interleaved schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A read of `var` by `txn`.
    Read {
        /// The transaction issuing the read.
        txn: TxnId,
        /// The item read.
        var: VarId,
    },
    /// A write of `var` by `txn`.
    Write {
        /// The transaction issuing the write.
        txn: TxnId,
        /// The item written.
        var: VarId,
    },
}

impl Op {
    /// The transaction issuing this operation.
    pub fn txn(&self) -> TxnId {
        match self {
            Op::Read { txn, .. } | Op::Write { txn, .. } => *txn,
        }
    }

    /// The item this operation touches.
    pub fn var(&self) -> VarId {
        match self {
            Op::Read { var, .. } | Op::Write { var, .. } => *var,
        }
    }

    /// Two operations conflict if they touch the same item, belong to
    /// different transactions, and at least one writes (the paper's
    /// footnote ¶: "two operations conflict if one is write").
    pub fn conflicts_with(&self, other: &Op) -> bool {
        self.txn() != other.txn()
            && self.var() == other.var()
            && (matches!(self, Op::Write { .. }) || matches!(other, Op::Write { .. }))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read { txn, var } => write!(f, "r{}[{var}]", txn.index()),
            Op::Write { txn, var } => write!(f, "w{}[{var}]", txn.index()),
        }
    }
}

/// An operation-level schedule of several transactions.
///
/// # Example
///
/// ```rust
/// use histmerge_history::interleaved::{InterleavedSchedule, Op};
/// use histmerge_txn::{TxnId, VarId};
///
/// let (t0, t1) = (TxnId::new(0), TxnId::new(1));
/// let x = VarId::new(0);
/// // r0[x] r1[x] w1[x] w0[x]: a lost-update anomaly — not serializable.
/// let s = InterleavedSchedule::from_ops([
///     Op::Read { txn: t0, var: x },
///     Op::Read { txn: t1, var: x },
///     Op::Write { txn: t1, var: x },
///     Op::Write { txn: t0, var: x },
/// ]);
/// assert!(!s.is_conflict_serializable());
/// ```
#[derive(Debug, Clone, Default)]
pub struct InterleavedSchedule {
    ops: Vec<Op>,
}

impl InterleavedSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        InterleavedSchedule::default()
    }

    /// Creates a schedule from operations in execution order.
    pub fn from_ops<I: IntoIterator<Item = Op>>(ops: I) -> Self {
        InterleavedSchedule { ops: ops.into_iter().collect() }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the schedule has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The distinct transactions, in order of first appearance.
    pub fn txns(&self) -> Vec<TxnId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for op in &self.ops {
            if seen.insert(op.txn()) {
                out.push(op.txn());
            }
        }
        out
    }

    /// The serialization graph: `Ti → Tj` iff some operation of `Ti`
    /// precedes a conflicting operation of `Tj`.
    pub fn serialization_graph(&self) -> BTreeMap<TxnId, BTreeSet<TxnId>> {
        let mut graph: BTreeMap<TxnId, BTreeSet<TxnId>> =
            self.txns().into_iter().map(|t| (t, BTreeSet::new())).collect();
        for (i, a) in self.ops.iter().enumerate() {
            for b in &self.ops[i + 1..] {
                if a.conflicts_with(b) {
                    graph.get_mut(&a.txn()).expect("txn registered").insert(b.txn());
                }
            }
        }
        graph
    }

    /// Conflict-serializability: the serialization graph is acyclic.
    pub fn is_conflict_serializable(&self) -> bool {
        self.serial_order().is_some()
    }

    /// Extracts an equivalent serial history (the explicit `H^s` the
    /// rewriting model assumes), or `None` if the schedule is not
    /// conflict serializable. Ties are broken by first-appearance order,
    /// so fully independent transactions keep their submission order.
    pub fn serial_order(&self) -> Option<SerialHistory> {
        let graph = self.serialization_graph();
        let order = self.txns();
        let mut indegree: BTreeMap<TxnId, usize> = order.iter().map(|t| (*t, 0)).collect();
        for succs in graph.values() {
            for s in succs {
                *indegree.get_mut(s).expect("txn registered") += 1;
            }
        }
        let mut emitted: BTreeSet<TxnId> = BTreeSet::new();
        let mut out = Vec::with_capacity(order.len());
        while out.len() < order.len() {
            let next = order.iter().copied().find(|t| !emitted.contains(t) && indegree[t] == 0)?;
            emitted.insert(next);
            out.push(next);
            for s in &graph[&next] {
                if !emitted.contains(s) {
                    *indegree.get_mut(s).expect("txn registered") -= 1;
                }
            }
        }
        Some(SerialHistory::from_order(out))
    }
}

impl fmt::Display for InterleavedSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// Builds the operation sequence of a transaction from its static sets:
/// all reads (in item order), then all writes. Used to lower a serial
/// transaction execution onto the operation level.
pub fn ops_of_transaction(txn: &histmerge_txn::Transaction) -> impl Iterator<Item = Op> + '_ {
    let id = txn.id();
    txn.readset()
        .iter()
        .map(move |var| Op::Read { txn: id, var })
        .chain(txn.writeset().iter().map(move |var| Op::Write { txn: id, var }))
        .collect::<Vec<_>>()
        .into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn r(txn: u32, var: u32) -> Op {
        Op::Read { txn: t(txn), var: v(var) }
    }

    fn w(txn: u32, var: u32) -> Op {
        Op::Write { txn: t(txn), var: v(var) }
    }

    #[test]
    fn conflict_rules() {
        assert!(w(0, 1).conflicts_with(&r(1, 1)));
        assert!(r(0, 1).conflicts_with(&w(1, 1)));
        assert!(w(0, 1).conflicts_with(&w(1, 1)));
        assert!(!r(0, 1).conflicts_with(&r(1, 1)), "read-read never conflicts");
        assert!(!w(0, 1).conflicts_with(&w(1, 2)), "different items");
        assert!(!w(0, 1).conflicts_with(&w(0, 1)), "same transaction");
    }

    #[test]
    fn serial_schedule_is_serializable() {
        let s = InterleavedSchedule::from_ops([r(0, 0), w(0, 0), r(1, 0), w(1, 0)]);
        assert!(s.is_conflict_serializable());
        assert_eq!(s.serial_order().unwrap().order(), &[t(0), t(1)]);
    }

    #[test]
    fn lost_update_is_not_serializable() {
        let s = InterleavedSchedule::from_ops([r(0, 0), r(1, 0), w(1, 0), w(0, 0)]);
        assert!(!s.is_conflict_serializable());
        assert!(s.serial_order().is_none());
    }

    #[test]
    fn interleaved_but_serializable() {
        // r0[x] r1[y] w0[x] w1[y]: disjoint items, any order works.
        let s = InterleavedSchedule::from_ops([r(0, 0), r(1, 1), w(0, 0), w(1, 1)]);
        assert!(s.is_conflict_serializable());
        // First-appearance tie-break keeps submission order.
        assert_eq!(s.serial_order().unwrap().order(), &[t(0), t(1)]);
    }

    #[test]
    fn serialization_can_reorder() {
        // T1 wrote x before T0 read it: T1 must precede T0 even though T0
        // appeared first.
        let s = InterleavedSchedule::from_ops([r(0, 1), w(1, 0), r(0, 0), w(0, 1)]);
        let order = s.serial_order().unwrap();
        let p0 = order.position(t(0)).unwrap();
        let p1 = order.position(t(1)).unwrap();
        assert!(p1 < p0);
    }

    #[test]
    fn graph_edges_follow_op_order() {
        let s = InterleavedSchedule::from_ops([w(0, 0), r(1, 0), w(2, 0)]);
        let g = s.serialization_graph();
        assert!(g[&t(0)].contains(&t(1)));
        assert!(g[&t(0)].contains(&t(2)));
        assert!(g[&t(1)].contains(&t(2)));
        assert!(!g[&t(2)].contains(&t(0)));
    }

    #[test]
    fn three_way_cycle_detected() {
        // T0 -> T1 (x), T1 -> T2 (y), T2 -> T0 (z).
        let s = InterleavedSchedule::from_ops([
            w(0, 0),
            r(1, 0), // T0 -> T1
            w(1, 1),
            r(2, 1), // T1 -> T2
            w(2, 2),
            r(0, 2), // T2 -> T0
        ]);
        assert!(!s.is_conflict_serializable());
    }

    #[test]
    fn txns_in_first_appearance_order() {
        let s = InterleavedSchedule::from_ops([r(5, 0), r(1, 1), r(5, 2), r(0, 3)]);
        assert_eq!(s.txns(), vec![t(5), t(1), t(0)]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_format() {
        let s = InterleavedSchedule::from_ops([r(0, 1), w(1, 2)]);
        assert_eq!(s.to_string(), "r0[d1] w1[d2]");
    }

    #[test]
    fn ops_of_transaction_reads_then_writes() {
        use histmerge_txn::{Expr, ProgramBuilder, Transaction, TxnKind};
        use std::sync::Arc;
        let p = Arc::new(
            ProgramBuilder::new("t")
                .read(v(0))
                .read(v(1))
                .update(v(0), Expr::var(v(0)) + Expr::var(v(1)))
                .build()
                .unwrap(),
        );
        let txn = Transaction::new(t(3), "t", TxnKind::Tentative, p, vec![]);
        let ops: Vec<Op> = ops_of_transaction(&txn).collect();
        assert_eq!(ops, vec![r(3, 0), r(3, 1), w(3, 0)]);
    }

    #[test]
    fn serialized_interleaving_of_serial_txns_roundtrips() {
        // Lower a serial history to ops, interleave benignly, re-serialize.
        let serial = [t(0), t(1), t(2)];
        let mut s = InterleavedSchedule::new();
        // Each txn reads/writes its own item: fully independent.
        for (i, id) in serial.iter().enumerate() {
            s.push(Op::Read { txn: *id, var: v(i as u32) });
        }
        for (i, id) in serial.iter().enumerate() {
            s.push(Op::Write { txn: *id, var: v(i as u32) });
        }
        assert_eq!(s.serial_order().unwrap().order(), &serial);
    }
}
