//! Back-out strategies: computing the set `B` of undesirable transactions.
//!
//! Protocol step 2 (Section 2.1): when the precedence graph has cycles,
//! compute a set `B` of **tentative** transactions whose removal breaks
//! every cycle (base transactions are durable and may never be backed out).
//! Minimizing `|B|` is NP-complete (it is a constrained feedback vertex set
//! problem), so the paper — following Davidson's ACM TODS 1984 study —
//! relies on heuristics, singling out *breaking two-cycles optimally* as the
//! strategy that "can still achieve good performance".
//!
//! Implemented strategies:
//!
//! * [`ExactMinimum`] — exact minimum-weight back-out set by branch and
//!   bound per cyclic SCC (exponential; bounded by a configurable node
//!   budget, falling back to greedy above it);
//! * [`TwoCycleOptimal`] — Davidson's heuristic: solve the two-cycle layer
//!   optimally (a vertex-cover instance), then break residual cycles
//!   greedily;
//! * [`GreedyScc`] — repeatedly back out the highest-degree tentative
//!   transaction of a cyclic SCC.

use std::collections::BTreeSet;
use std::fmt;

use histmerge_txn::{TxnId, TxnKind};

use crate::precedence::PrecedenceGraph;

/// Errors raised by back-out computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackoutError {
    /// A cycle contains no tentative transaction, so it cannot be broken
    /// without violating the durability of base transactions. With a
    /// serializable base history this cannot happen; seeing it means the
    /// inputs were not two histories over a common initial state.
    UnbreakableCycle {
        /// The transactions on the offending strongly connected component.
        scc: Vec<TxnId>,
    },
}

impl fmt::Display for BackoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackoutError::UnbreakableCycle { scc } => {
                write!(f, "cycle through {} base transactions cannot be broken", scc.len())
            }
        }
    }
}

impl std::error::Error for BackoutError {}

/// A strategy for computing the back-out set `B`.
///
/// `weight` assigns each tentative transaction a back-out cost (e.g. 1 for
/// plain counts, or the size of its reads-from closure to model Davidson's
/// weighted variants); strategies prefer low-weight sets.
///
/// Strategies run concurrently in the parallel merge pipeline, so
/// implementations must be `Send + Sync` (the bundled strategies are plain
/// configuration structs).
pub trait BackoutStrategy: Send + Sync {
    /// Computes a set `B` of tentative transactions such that the graph
    /// minus `B` is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`BackoutError::UnbreakableCycle`] if some cycle contains no
    /// tentative transaction.
    fn compute(
        &self,
        graph: &PrecedenceGraph,
        weight: &dyn Fn(TxnId) -> u64,
    ) -> Result<BTreeSet<TxnId>, BackoutError>;

    /// Human-readable strategy name for experiment reports.
    fn name(&self) -> &'static str;
}

/// The natural back-out weight: `1 + |AG({t})|`, i.e. backing out `t`
/// costs `t` itself plus every transaction in its reads-from transitive
/// closure. This is the default weight of the merge pipeline — it makes
/// strategies prefer `B = {Tm3}` over the equally cycle-breaking
/// `B = {Tm2}` in Example 1, because `Tm2`'s closure drags in `Tm3` and
/// `Tm4`.
pub fn affected_weight(
    arena: &crate::TxnArena,
    hm: &crate::SerialHistory,
) -> impl Fn(TxnId) -> u64 + 'static {
    let weights = crate::readsfrom::ClosureTable::build(arena, hm).weights();
    move |id: TxnId| weights.get(&id).copied().unwrap_or(1)
}

fn tentative_members(graph: &PrecedenceGraph, scc: &[TxnId]) -> Vec<TxnId> {
    scc.iter().copied().filter(|id| graph.kind(*id) == Some(TxnKind::Tentative)).collect()
}

/// Greedy pass: while cycles remain, remove the tentative node with the
/// highest degree-to-weight ratio inside some cyclic SCC.
fn greedy_break(
    graph: &PrecedenceGraph,
    weight: &dyn Fn(TxnId) -> u64,
    removed: &mut BTreeSet<TxnId>,
) -> Result<(), BackoutError> {
    loop {
        let sccs = graph.cyclic_sccs(removed);
        if sccs.is_empty() {
            return Ok(());
        }
        for scc in &sccs {
            let candidates = tentative_members(graph, scc);
            if candidates.is_empty() {
                return Err(BackoutError::UnbreakableCycle { scc: scc.clone() });
            }
            // Cheapest back-out first: minimal weight (back-out cost),
            // ties broken by highest degree (more cycles covered), then by
            // id for determinism.
            let pick = candidates
                .into_iter()
                .min_by_key(|id| {
                    let d = graph.degree_without(*id, removed);
                    (weight(*id).max(1), usize::MAX - d, *id)
                })
                .expect("candidates nonempty");
            removed.insert(pick);
        }
    }
}

/// Exact minimum-weight back-out per cyclic SCC via branch and bound.
///
/// Complexity is exponential in the number of tentative nodes of each
/// cyclic SCC; above [`ExactMinimum::node_budget`] the strategy falls back
/// to the greedy heuristic for that SCC. Used as the quality yardstick in
/// the back-out experiments (E7).
#[derive(Debug, Clone)]
pub struct ExactMinimum {
    /// Maximum tentative nodes per SCC attempted exactly.
    pub node_budget: usize,
}

impl Default for ExactMinimum {
    fn default() -> Self {
        ExactMinimum { node_budget: 20 }
    }
}

impl ExactMinimum {
    /// Creates the strategy with the default node budget (20).
    pub fn new() -> Self {
        Self::default()
    }
}

impl BackoutStrategy for ExactMinimum {
    fn compute(
        &self,
        graph: &PrecedenceGraph,
        weight: &dyn Fn(TxnId) -> u64,
    ) -> Result<BTreeSet<TxnId>, BackoutError> {
        let mut removed = BTreeSet::new();
        // SCCs are independent: a cycle never spans two SCCs.
        loop {
            let sccs = graph.cyclic_sccs(&removed);
            if sccs.is_empty() {
                return Ok(removed);
            }
            for scc in &sccs {
                let candidates = tentative_members(graph, scc);
                if candidates.is_empty() {
                    return Err(BackoutError::UnbreakableCycle { scc: scc.clone() });
                }
                if candidates.len() > self.node_budget {
                    greedy_break(graph, weight, &mut removed)?;
                    continue;
                }
                let best = best_subset(graph, scc, &candidates, weight, &removed)
                    .ok_or_else(|| BackoutError::UnbreakableCycle { scc: scc.clone() })?;
                removed.extend(best);
            }
        }
    }

    fn name(&self) -> &'static str {
        "exact-minimum"
    }
}

/// Finds the minimum-weight subset of `candidates` whose removal (on top of
/// `already`) breaks every cycle **within `scc`**. Other strongly connected
/// components are handled independently, so the acyclicity check masks out
/// every node outside this SCC. Enumerates subsets in order of increasing
/// size, then weight, so the first hit is optimal in size with minimal
/// weight among that size.
fn best_subset(
    graph: &PrecedenceGraph,
    scc: &[TxnId],
    candidates: &[TxnId],
    weight: &dyn Fn(TxnId) -> u64,
    already: &BTreeSet<TxnId>,
) -> Option<BTreeSet<TxnId>> {
    let n = candidates.len();
    let outside: BTreeSet<TxnId> =
        graph.nodes().iter().copied().filter(|id| !scc.contains(id)).collect();
    let mut best: Option<(u64, usize, BTreeSet<TxnId>)> = None;
    // Enumerate all subsets; prune by current best weight.
    for mask in 0u64..(1u64 << n) {
        let size = mask.count_ones() as usize;
        let mut w = 0u64;
        let mut set: BTreeSet<TxnId> = already.union(&outside).copied().collect();
        for (i, id) in candidates.iter().enumerate() {
            if mask & (1 << i) != 0 {
                w = w.saturating_add(weight(*id).max(1));
                set.insert(*id);
            }
        }
        if let Some((bw, bs, _)) = &best {
            if (w, size) >= (*bw, *bs) {
                continue;
            }
        }
        if graph.is_acyclic_without(&set) {
            let chosen: BTreeSet<TxnId> = candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, id)| *id)
                .collect();
            best = Some((w, size, chosen));
        }
    }
    best.map(|(_, _, s)| s)
}

/// Davidson's *breaking two-cycles optimally* strategy.
///
/// Two-party conflicts appear in the precedence graph as 2-cycles. The
/// strategy first computes a minimum-weight set of tentative transactions
/// covering every 2-cycle (a vertex-cover instance, solved exactly up to
/// [`TwoCycleOptimal::cover_budget`] nodes, greedily above), then breaks
/// any residual longer cycles greedily.
#[derive(Debug, Clone)]
pub struct TwoCycleOptimal {
    /// Maximum distinct tentative nodes in the 2-cycle layer attempted
    /// exactly.
    pub cover_budget: usize,
}

impl Default for TwoCycleOptimal {
    fn default() -> Self {
        TwoCycleOptimal { cover_budget: 20 }
    }
}

impl TwoCycleOptimal {
    /// Creates the strategy with the default cover budget (20).
    pub fn new() -> Self {
        Self::default()
    }
}

impl BackoutStrategy for TwoCycleOptimal {
    fn compute(
        &self,
        graph: &PrecedenceGraph,
        weight: &dyn Fn(TxnId) -> u64,
    ) -> Result<BTreeSet<TxnId>, BackoutError> {
        let mut removed = BTreeSet::new();
        let two_cycles = graph.two_cycles(&removed);

        // Forced picks: a 2-cycle touching a base transaction can only lose
        // its tentative member.
        let mut open_pairs: Vec<(TxnId, TxnId)> = Vec::new();
        for (a, b) in two_cycles {
            let ta = graph.kind(a) == Some(TxnKind::Tentative);
            let tb = graph.kind(b) == Some(TxnKind::Tentative);
            match (ta, tb) {
                (true, true) => open_pairs.push((a, b)),
                (true, false) => {
                    removed.insert(a);
                }
                (false, true) => {
                    removed.insert(b);
                }
                (false, false) => {
                    return Err(BackoutError::UnbreakableCycle { scc: vec![a, b] });
                }
            }
        }
        // Drop pairs already covered by forced picks.
        open_pairs.retain(|(a, b)| !removed.contains(a) && !removed.contains(b));

        // Vertex cover over the remaining tentative-tentative 2-cycles.
        let mut vertices: Vec<TxnId> = open_pairs.iter().flat_map(|(a, b)| [*a, *b]).collect();
        vertices.sort_unstable();
        vertices.dedup();
        if vertices.len() <= self.cover_budget {
            if let Some(cover) = min_vertex_cover(&vertices, &open_pairs, weight) {
                removed.extend(cover);
            }
        } else {
            // Greedy cover: repeatedly take the vertex covering the most
            // open pairs per unit weight.
            let mut pairs = open_pairs.clone();
            while !pairs.is_empty() {
                let pick = vertices
                    .iter()
                    .copied()
                    .filter(|v| !removed.contains(v))
                    .max_by_key(|v| {
                        let cover = pairs.iter().filter(|(a, b)| a == v || b == v).count();
                        (cover as u64 * 1_000_000) / weight(*v).max(1)
                    })
                    .expect("open pairs imply candidate vertices");
                removed.insert(pick);
                pairs.retain(|(a, b)| *a != pick && *b != pick);
            }
        }

        // Residual (longer) cycles: greedy.
        greedy_break(graph, weight, &mut removed)?;
        Ok(removed)
    }

    fn name(&self) -> &'static str {
        "two-cycle-optimal"
    }
}

/// Exact minimum-weight vertex cover of `pairs` by subset enumeration.
fn min_vertex_cover(
    vertices: &[TxnId],
    pairs: &[(TxnId, TxnId)],
    weight: &dyn Fn(TxnId) -> u64,
) -> Option<BTreeSet<TxnId>> {
    if pairs.is_empty() {
        return Some(BTreeSet::new());
    }
    let n = vertices.len();
    let mut best: Option<(u64, BTreeSet<TxnId>)> = None;
    for mask in 0u64..(1u64 << n) {
        let set: BTreeSet<TxnId> = vertices
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, id)| *id)
            .collect();
        if !pairs.iter().all(|(a, b)| set.contains(a) || set.contains(b)) {
            continue;
        }
        let w: u64 = set.iter().map(|id| weight(*id).max(1)).sum();
        if best.as_ref().is_none_or(|(bw, bset)| (w, set.len()) < (*bw, bset.len())) {
            best = Some((w, set));
        }
    }
    best.map(|(_, s)| s)
}

/// Pure greedy strategy: the baseline heuristic.
#[derive(Debug, Clone, Default)]
pub struct GreedyScc;

impl GreedyScc {
    /// Creates the greedy strategy.
    pub fn new() -> Self {
        GreedyScc
    }
}

impl BackoutStrategy for GreedyScc {
    fn compute(
        &self,
        graph: &PrecedenceGraph,
        weight: &dyn Fn(TxnId) -> u64,
    ) -> Result<BTreeSet<TxnId>, BackoutError> {
        let mut removed = BTreeSet::new();
        greedy_break(graph, weight, &mut removed)?;
        Ok(removed)
    }

    fn name(&self) -> &'static str {
        "greedy-scc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::example1;
    use crate::precedence::PrecedenceGraph;

    fn unit(_: TxnId) -> u64 {
        1
    }

    fn strategies() -> Vec<Box<dyn BackoutStrategy>> {
        vec![
            Box::new(ExactMinimum::new()),
            Box::new(TwoCycleOptimal::new()),
            Box::new(GreedyScc::new()),
        ]
    }

    #[test]
    fn example1_exact_backs_out_only_tm3() {
        let ex = example1();
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        // Under the affected-set weight, backing out Tm3 (closure {Tm4})
        // is cheaper than backing out Tm2 (closure {Tm3, Tm4}).
        let weight = affected_weight(&ex.arena, &ex.hm);
        let b = ExactMinimum::new().compute(&g, &weight).unwrap();
        assert_eq!(b, [ex.m[2]].into_iter().collect(), "B = {{Tm3}} per the paper");
    }

    #[test]
    fn affected_weight_counts_closures() {
        let ex = example1();
        let weight = affected_weight(&ex.arena, &ex.hm);
        assert_eq!(weight(ex.m[0]), 4); // Tm1 taints Tm2, Tm3, Tm4
        assert_eq!(weight(ex.m[1]), 3); // Tm2 taints Tm3, Tm4
        assert_eq!(weight(ex.m[2]), 2); // Tm3 taints Tm4
        assert_eq!(weight(ex.m[3]), 1);
        assert_eq!(weight(ex.b[0]), 1); // base txns default to 1
    }

    #[test]
    fn all_strategies_produce_acyclic_result() {
        let ex = example1();
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        for s in strategies() {
            let b = s.compute(&g, &unit).unwrap();
            assert!(g.is_acyclic_without(&b), "strategy {} left a cycle", s.name());
            for id in &b {
                assert_eq!(
                    g.kind(*id),
                    Some(TxnKind::Tentative),
                    "strategy {} backed out a base transaction",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn exact_is_no_worse_than_heuristics() {
        let ex = example1();
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        let exact = ExactMinimum::new().compute(&g, &unit).unwrap();
        for s in strategies() {
            let b = s.compute(&g, &unit).unwrap();
            assert!(exact.len() <= b.len(), "{} beat exact", s.name());
        }
    }

    #[test]
    fn acyclic_graph_needs_no_backout() {
        let ex = example1();
        // Base history alone is always acyclic.
        let g = PrecedenceGraph::build(&ex.arena, &crate::SerialHistory::new(), &ex.hb);
        for s in strategies() {
            assert!(s.compute(&g, &unit).unwrap().is_empty());
        }
    }

    #[test]
    fn weights_steer_choice() {
        let ex = example1();
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        // Make Tm3 enormously expensive: the exact strategy must find an
        // alternative (backing out Tm2 also breaks the cycle, at the cost
        // of a larger affected set — a quality/cost trade the weighted
        // variant exposes).
        let m3 = ex.m[2];
        let weight = move |id: TxnId| if id == m3 { 1000 } else { 1 };
        let b = ExactMinimum::new().compute(&g, &weight).unwrap();
        assert!(!b.contains(&m3));
        assert!(g.is_acyclic_without(&b));
    }

    #[test]
    fn two_cycle_mixed_pair_forces_tentative() {
        use histmerge_txn::{Expr, ProgramBuilder, Transaction};
        use std::sync::Arc;
        let v0 = histmerge_txn::VarId::new(0);
        let prog = Arc::new(
            ProgramBuilder::new("rw")
                .read(v0)
                .update(v0, Expr::var(v0) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let mut arena = crate::TxnArena::new();
        let m =
            arena.alloc(|id| Transaction::new(id, "m", TxnKind::Tentative, prog.clone(), vec![]));
        let b = arena.alloc(|id| Transaction::new(id, "b", TxnKind::Base, prog.clone(), vec![]));
        let g = PrecedenceGraph::build(
            &arena,
            &crate::SerialHistory::from_order([m]),
            &crate::SerialHistory::from_order([b]),
        );
        let out = TwoCycleOptimal::new().compute(&g, &unit).unwrap();
        assert_eq!(out, [m].into_iter().collect());
    }

    #[test]
    fn error_display() {
        let e = BackoutError::UnbreakableCycle { scc: vec![TxnId::new(0), TxnId::new(1)] };
        assert!(e.to_string().contains("cannot be broken"));
    }
}
