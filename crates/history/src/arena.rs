//! Transaction arena: ownership and identity for transaction instances.

use histmerge_txn::{Transaction, TxnId, TxnKind};

/// Owns every transaction of a merge scenario and assigns dense [`TxnId`]s.
///
/// Histories ([`SerialHistory`](crate::SerialHistory)) reference
/// transactions by id, so a tentative history and a base history over the
/// same arena can be combined into one precedence graph without cloning
/// programs.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{Expr, ProgramBuilder, Transaction, TxnKind, VarId};
/// use histmerge_history::TxnArena;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = VarId::new(0);
/// let prog = std::sync::Arc::new(
///     ProgramBuilder::new("inc").read(x).update(x, Expr::var(x) + Expr::konst(1)).build()?,
/// );
/// let mut arena = TxnArena::new();
/// let id = arena.alloc(|id| Transaction::new(id, "Tm1", TxnKind::Tentative, prog, vec![]));
/// assert_eq!(arena.get(id).name(), "Tm1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TxnArena {
    txns: Vec<Transaction>,
}

impl TxnArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TxnArena::default()
    }

    /// Allocates the next [`TxnId`] and stores the transaction the callback
    /// builds for it.
    ///
    /// # Panics
    ///
    /// Panics if the callback returns a transaction whose id differs from
    /// the one supplied — ids are the arena's invariant.
    pub fn alloc(&mut self, build: impl FnOnce(TxnId) -> Transaction) -> TxnId {
        let id = TxnId::new(self.txns.len() as u32);
        let txn = build(id);
        assert_eq!(txn.id(), id, "transaction must keep the id assigned by the arena");
        self.txns.push(txn);
        id
    }

    /// Returns the transaction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this arena.
    pub fn get(&self, id: TxnId) -> &Transaction {
        &self.txns[id.index() as usize]
    }

    /// Returns the transaction with the given id, or `None` if the id is
    /// foreign to this arena.
    pub fn try_get(&self, id: TxnId) -> Option<&Transaction> {
        self.txns.get(id.index() as usize)
    }

    /// Number of transactions allocated.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Returns `true` if no transactions are allocated.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Iterates all transactions in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> + '_ {
        self.txns.iter()
    }

    /// Iterates the ids of all transactions of the given kind.
    pub fn ids_of_kind(&self, kind: TxnKind) -> impl Iterator<Item = TxnId> + '_ {
        self.txns.iter().filter(move |t| t.kind() == kind).map(Transaction::id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, VarId};
    use std::sync::Arc;

    fn prog() -> Arc<Program> {
        let x = VarId::new(0);
        Arc::new(
            ProgramBuilder::new("p")
                .read(x)
                .update(x, Expr::var(x) + Expr::konst(1))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn alloc_assigns_dense_ids() {
        let mut arena = TxnArena::new();
        let p = prog();
        let a = arena.alloc(|id| Transaction::new(id, "a", TxnKind::Base, p.clone(), vec![]));
        let b = arena.alloc(|id| Transaction::new(id, "b", TxnKind::Tentative, p.clone(), vec![]));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(b).name(), "b");
        assert!(arena.try_get(TxnId::new(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "must keep the id")]
    fn alloc_rejects_id_mismatch() {
        let mut arena = TxnArena::new();
        let p = prog();
        arena.alloc(|_| Transaction::new(TxnId::new(99), "bad", TxnKind::Base, p, vec![]));
    }

    #[test]
    fn ids_of_kind_filters() {
        let mut arena = TxnArena::new();
        let p = prog();
        arena.alloc(|id| Transaction::new(id, "b1", TxnKind::Base, p.clone(), vec![]));
        let m = arena.alloc(|id| Transaction::new(id, "m1", TxnKind::Tentative, p.clone(), vec![]));
        arena.alloc(|id| Transaction::new(id, "b2", TxnKind::Base, p.clone(), vec![]));
        let tentative: Vec<_> = arena.ids_of_kind(TxnKind::Tentative).collect();
        assert_eq!(tentative, vec![m]);
        assert_eq!(arena.ids_of_kind(TxnKind::Base).count(), 2);
        assert!(!arena.is_empty());
    }
}
