//! Transaction arena: ownership and identity for transaction instances.

use histmerge_txn::{Transaction, TxnId, TxnKind, VarSet};

use crate::footprint::{DenseBits, VarInterner};

/// Owns every transaction of a merge scenario and assigns dense [`TxnId`]s.
///
/// Histories ([`SerialHistory`](crate::SerialHistory)) reference
/// transactions by id, so a tentative history and a base history over the
/// same arena can be combined into one precedence graph without cloning
/// programs.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{Expr, ProgramBuilder, Transaction, TxnKind, VarId};
/// use histmerge_history::TxnArena;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = VarId::new(0);
/// let prog = std::sync::Arc::new(
///     ProgramBuilder::new("inc").read(x).update(x, Expr::var(x) + Expr::konst(1)).build()?,
/// );
/// let mut arena = TxnArena::new();
/// let id = arena.alloc(|id| Transaction::new(id, "Tm1", TxnKind::Tentative, prog, vec![]));
/// assert_eq!(arena.get(id).name(), "Tm1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TxnArena {
    txns: Vec<Transaction>,
    /// Dense variable index over every footprint seen at admission.
    interner: VarInterner,
    /// Per-transaction read-set bitsets over the interner, parallel to
    /// `txns`.
    read_bits: Vec<DenseBits>,
    /// Per-transaction write-set bitsets, parallel to `txns`.
    write_bits: Vec<DenseBits>,
}

impl TxnArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TxnArena::default()
    }

    /// Allocates the next [`TxnId`] and stores the transaction the callback
    /// builds for it, interning its read/write footprint into the arena's
    /// dense bitset index (the merge hot path's conflict-test
    /// representation).
    ///
    /// # Panics
    ///
    /// Panics if the callback returns a transaction whose id differs from
    /// the one supplied — ids are the arena's invariant.
    pub fn alloc(&mut self, build: impl FnOnce(TxnId) -> Transaction) -> TxnId {
        let id = TxnId::new(self.txns.len() as u32);
        let txn = build(id);
        assert_eq!(txn.id(), id, "transaction must keep the id assigned by the arena");
        self.read_bits.push(self.interner.intern_set(txn.readset()));
        self.write_bits.push(self.interner.intern_set(txn.writeset()));
        self.txns.push(txn);
        id
    }

    /// The interned read-set bitset of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this arena.
    pub fn read_bits(&self, id: TxnId) -> &DenseBits {
        &self.read_bits[id.index() as usize]
    }

    /// The interned write-set bitset of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this arena.
    pub fn write_bits(&self, id: TxnId) -> &DenseBits {
        &self.write_bits[id.index() as usize]
    }

    /// Word-wise conflict test: `true` if `a` and `b` touch a common item
    /// with at least one write (r/w, w/r or w/w overlap). Equivalent to
    /// the `VarSet` test
    /// `a.reads ∩ b.writes ∪ a.writes ∩ b.reads ∪ a.writes ∩ b.writes ≠ ∅`.
    pub fn conflicts(&self, a: TxnId, b: TxnId) -> bool {
        let (ai, bi) = (a.index() as usize, b.index() as usize);
        self.read_bits[ai].intersects(&self.write_bits[bi])
            || self.write_bits[ai].intersects(&self.read_bits[bi])
            || self.write_bits[ai].intersects(&self.write_bits[bi])
    }

    /// Word-wise test for `reader.readset ∩ writer.writeset ≠ ∅` (the
    /// precedence rule-3 primitive).
    pub fn reads_overlap_writes(&self, reader: TxnId, writer: TxnId) -> bool {
        self.read_bits[reader.index() as usize]
            .intersects(&self.write_bits[writer.index() as usize])
    }

    /// The bitset of an arbitrary variable set over this arena's index.
    /// Variables the arena has never seen are skipped — they cannot
    /// overlap any admitted footprint.
    pub fn bits_of(&self, vars: &VarSet) -> DenseBits {
        self.interner.bits_of(vars)
    }

    /// Number of distinct variables interned across all footprints.
    pub fn var_count(&self) -> usize {
        self.interner.len()
    }

    /// Returns the transaction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this arena.
    pub fn get(&self, id: TxnId) -> &Transaction {
        &self.txns[id.index() as usize]
    }

    /// Returns the transaction with the given id, or `None` if the id is
    /// foreign to this arena.
    pub fn try_get(&self, id: TxnId) -> Option<&Transaction> {
        self.txns.get(id.index() as usize)
    }

    /// Number of transactions allocated.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Returns `true` if no transactions are allocated.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Iterates all transactions in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> + '_ {
        self.txns.iter()
    }

    /// Iterates the ids of all transactions of the given kind.
    pub fn ids_of_kind(&self, kind: TxnKind) -> impl Iterator<Item = TxnId> + '_ {
        self.txns.iter().filter(move |t| t.kind() == kind).map(Transaction::id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, VarId};
    use std::sync::Arc;

    fn prog() -> Arc<Program> {
        let x = VarId::new(0);
        Arc::new(
            ProgramBuilder::new("p")
                .read(x)
                .update(x, Expr::var(x) + Expr::konst(1))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn alloc_assigns_dense_ids() {
        let mut arena = TxnArena::new();
        let p = prog();
        let a = arena.alloc(|id| Transaction::new(id, "a", TxnKind::Base, p.clone(), vec![]));
        let b = arena.alloc(|id| Transaction::new(id, "b", TxnKind::Tentative, p.clone(), vec![]));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(b).name(), "b");
        assert!(arena.try_get(TxnId::new(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "must keep the id")]
    fn alloc_rejects_id_mismatch() {
        let mut arena = TxnArena::new();
        let p = prog();
        arena.alloc(|_| Transaction::new(TxnId::new(99), "bad", TxnKind::Base, p, vec![]));
    }

    #[test]
    fn footprints_interned_at_admission() {
        use histmerge_txn::VarSet;
        let x = VarId::new(5);
        let y = VarId::new(9);
        let p1 = Arc::new(
            ProgramBuilder::new("p1")
                .read(x)
                .update(x, Expr::var(x) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let p2 = Arc::new(
            ProgramBuilder::new("p2")
                .read(y)
                .update(y, Expr::var(y) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let mut arena = TxnArena::new();
        let a = arena.alloc(|id| Transaction::new(id, "a", TxnKind::Base, p1.clone(), vec![]));
        let b = arena.alloc(|id| Transaction::new(id, "b", TxnKind::Base, p2, vec![]));
        let c = arena.alloc(|id| Transaction::new(id, "c", TxnKind::Tentative, p1, vec![]));
        assert_eq!(arena.var_count(), 2);
        // a and c share x: every conflict direction fires; b is disjoint.
        assert!(arena.conflicts(a, c));
        assert!(!arena.conflicts(a, b));
        assert!(arena.reads_overlap_writes(a, c));
        assert!(!arena.reads_overlap_writes(a, b));
        assert!(arena.read_bits(a).intersects(arena.write_bits(c)));
        // bits_of maps through the same index and skips foreign vars.
        let probe: VarSet = [x, VarId::new(77)].into_iter().collect();
        let bits = arena.bits_of(&probe);
        assert_eq!(bits.count(), 1);
        assert!(bits.intersects(arena.write_bits(a)));
        assert!(!bits.intersects(arena.write_bits(b)));
    }

    #[test]
    fn ids_of_kind_filters() {
        let mut arena = TxnArena::new();
        let p = prog();
        arena.alloc(|id| Transaction::new(id, "b1", TxnKind::Base, p.clone(), vec![]));
        let m = arena.alloc(|id| Transaction::new(id, "m1", TxnKind::Tentative, p.clone(), vec![]));
        arena.alloc(|id| Transaction::new(id, "b2", TxnKind::Base, p.clone(), vec![]));
        let tentative: Vec<_> = arena.ids_of_kind(TxnKind::Tentative).collect();
        assert_eq!(tentative, vec![m]);
        assert_eq!(arena.ids_of_kind(TxnKind::Base).count(), 2);
        assert!(!arena.is_empty());
    }
}
