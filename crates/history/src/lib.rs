//! History machinery for `histmerge`.
//!
//! This crate implements the history-level substrate of the paper
//! *"Incorporating Transaction Semantics to Reduce Reprocessing Overhead in
//! Replicated Mobile Data Applications"* (Liu, Ammann, Jajodia, ICDCS 1999):
//!
//! * [`TxnArena`] — owns transaction instances and assigns identities;
//! * [`SerialHistory`] — an ordered execution of transactions;
//! * [`AugmentedHistory`] — a serial history interleaved with explicit
//!   database states (Section 3), the structure the rewriting algorithms
//!   operate on, with [final-state equivalence](AugmentedHistory::final_state_equivalent)
//!   checks;
//! * [`readsfrom`] — the reads-from relation and the *affected set* `AG`
//!   (the reads-from transitive closure of the back-out set `B`);
//! * [`PrecedenceGraph`] — the Davidson-style graph `G(H_m, H_b)` built from
//!   a tentative and a base history (Section 2.1, step 1) with cycle
//!   detection (Theorem 1);
//! * [`backout`] — strategies for computing the back-out set `B`
//!   (Section 2.1, step 2; strategies follow Davidson's ACM TODS 1984
//!   paper: exact minimum, two-cycle-optimal, greedy).
//!
//! # Example
//!
//! ```rust
//! use histmerge_txn::{Expr, ProgramBuilder, Transaction, TxnKind, VarId};
//! use histmerge_history::{PrecedenceGraph, SerialHistory, TxnArena};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = VarId::new(0);
//! let inc = std::sync::Arc::new(
//!     ProgramBuilder::new("inc").read(x).update(x, Expr::var(x) + Expr::konst(1)).build()?,
//! );
//! let mut arena = TxnArena::new();
//! let tm = arena.alloc(|id| Transaction::new(id, "Tm1", TxnKind::Tentative, inc.clone(), vec![]));
//! let tb = arena.alloc(|id| Transaction::new(id, "Tb1", TxnKind::Base, inc.clone(), vec![]));
//! let hm = SerialHistory::from_order([tm]);
//! let hb = SerialHistory::from_order([tb]);
//! let graph = PrecedenceGraph::build(&arena, &hm, &hb);
//! // Both histories updated x from the same start state: a write-write
//! // conflict in both directions, hence a cycle.
//! assert!(!graph.is_acyclic());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod augmented;
mod schedule;

pub mod backout;
pub mod fixtures;
pub mod footprint;
pub mod interleaved;
pub mod log;
pub mod precedence;
pub mod readsfrom;

pub use arena::TxnArena;
pub use augmented::{run_to_final, AugmentedHistory, HistoryError, StepRecord};
pub use backout::{BackoutError, BackoutStrategy, ExactMinimum, GreedyScc, TwoCycleOptimal};
pub use footprint::{DenseBits, VarInterner};
pub use precedence::{BaseEdgeCache, EdgeKind, GraphScratch, PrecedenceGraph};
pub use readsfrom::{closure_weights_for, ClosureScratch, ClosureTable};
pub use schedule::SerialHistory;
