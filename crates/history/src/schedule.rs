//! Serial histories: ordered executions of transactions.

use std::fmt;

use histmerge_txn::TxnId;

/// A serial history: the order in which a set of transactions executed.
///
/// The paper assumes every history to be merged "is serializable and there
/// is an explicit serial history `H^s` of `H`" (Section 3); `SerialHistory`
/// is that explicit serial order. States are attached by
/// [`AugmentedHistory`](crate::AugmentedHistory).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SerialHistory {
    order: Vec<TxnId>,
}

impl SerialHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        SerialHistory::default()
    }

    /// Creates a history from an explicit order.
    pub fn from_order<I: IntoIterator<Item = TxnId>>(order: I) -> Self {
        SerialHistory { order: order.into_iter().collect() }
    }

    /// Appends a transaction at the end (a new commit).
    pub fn push(&mut self, id: TxnId) {
        self.order.push(id);
    }

    /// The transactions in execution order.
    pub fn order(&self) -> &[TxnId] {
        &self.order
    }

    /// Number of transactions in the history.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the history contains no transactions.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The position of `id` in the history, if present.
    pub fn position(&self, id: TxnId) -> Option<usize> {
        self.order.iter().position(|t| *t == id)
    }

    /// Returns `true` if `id` appears in the history.
    pub fn contains(&self, id: TxnId) -> bool {
        self.position(id).is_some()
    }

    /// Iterates the transactions in execution order.
    pub fn iter(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.order.iter().copied()
    }

    /// The prefix of the first `n` transactions.
    pub fn prefix(&self, n: usize) -> SerialHistory {
        SerialHistory { order: self.order[..n.min(self.order.len())].to_vec() }
    }

    /// A copy of the history with every transaction in `remove` filtered
    /// out (the reads-from transitive-closure back-out produces exactly
    /// this, cf. Theorem 3).
    pub fn without<'a, I: IntoIterator<Item = &'a TxnId>>(&self, remove: I) -> SerialHistory {
        let remove: std::collections::BTreeSet<TxnId> = remove.into_iter().copied().collect();
        SerialHistory {
            order: self.order.iter().copied().filter(|t| !remove.contains(t)).collect(),
        }
    }
}

impl FromIterator<TxnId> for SerialHistory {
    fn from_iter<I: IntoIterator<Item = TxnId>>(iter: I) -> Self {
        SerialHistory::from_order(iter)
    }
}

impl fmt::Display for SerialHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    #[test]
    fn order_and_position() {
        let mut h = SerialHistory::new();
        assert!(h.is_empty());
        h.push(t(2));
        h.push(t(0));
        assert_eq!(h.len(), 2);
        assert_eq!(h.position(t(0)), Some(1));
        assert_eq!(h.position(t(7)), None);
        assert!(h.contains(t(2)));
        assert_eq!(h.order(), &[t(2), t(0)]);
    }

    #[test]
    fn prefix_and_without() {
        let h: SerialHistory = [t(0), t(1), t(2), t(3)].into_iter().collect();
        assert_eq!(h.prefix(2).order(), &[t(0), t(1)]);
        assert_eq!(h.prefix(99).len(), 4);
        let removed = h.without([t(1), t(3)].iter());
        assert_eq!(removed.order(), &[t(0), t(2)]);
    }

    #[test]
    fn display() {
        let h: SerialHistory = [t(0), t(2)].into_iter().collect();
        assert_eq!(h.to_string(), "T0 T2");
        assert_eq!(SerialHistory::new().to_string(), "");
    }
}
