//! The reads-from relation and the affected set `AG`.
//!
//! The paper (footnote ‖) defines: transaction `T_j` *reads `x` from* `T_i`
//! if `T_j` reads `x` after `T_i` has updated `x` and no transaction updates
//! `x` in between. The *affected transactions* `AG` are the good
//! transactions in the reads-from transitive closure of the back-out set
//! `B`; the classical approach (Davidson 1984) backs out all of `B ∪ AG`.
//!
//! Relations here are computed over **static** read/write sets — the sets a
//! canned system extracts from transaction profiles offline (\[AJL98\], cited
//! in Section 7.1), so no read logging is needed at run time.

use std::collections::BTreeSet;

use histmerge_txn::{TxnId, VarId};

use crate::arena::TxnArena;
use crate::schedule::SerialHistory;

/// One reads-from fact: `reader` read `var` from `writer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReadsFrom {
    /// The transaction that read the value.
    pub reader: TxnId,
    /// The transaction that produced the value.
    pub writer: TxnId,
    /// The data item involved.
    pub var: VarId,
}

/// Computes every reads-from fact in a serial history.
///
/// For each transaction and each item in its read set, the writer is the
/// latest preceding transaction whose write set contains the item.
/// Transactions that read an item no one wrote earlier (they read from the
/// initial state) contribute no fact.
pub fn reads_from_facts(arena: &TxnArena, history: &SerialHistory) -> Vec<ReadsFrom> {
    let mut last_writer: std::collections::BTreeMap<VarId, TxnId> = Default::default();
    let mut facts = Vec::new();
    for id in history.iter() {
        let txn = arena.get(id);
        for var in txn.readset().iter() {
            if let Some(writer) = last_writer.get(&var) {
                facts.push(ReadsFrom { reader: id, writer: *writer, var });
            }
        }
        for var in txn.writeset().iter() {
            last_writer.insert(var, id);
        }
    }
    facts
}

/// Computes the affected set `AG`: every transaction *not in `bad`* that is
/// in the reads-from transitive closure of `bad`.
///
/// A single forward scan suffices for a serial history: a transaction is
/// affected as soon as it reads any item whose latest writer is in
/// `bad ∪ AG-so-far`.
///
/// # Example
///
/// In Example 1 of the paper, `Tm4` reads `d6` from `Tm3 ∈ B`, so
/// `AG = {Tm4}`.
pub fn affected_set(
    arena: &TxnArena,
    history: &SerialHistory,
    bad: &BTreeSet<TxnId>,
) -> BTreeSet<TxnId> {
    let mut tainted_writer: std::collections::BTreeMap<VarId, bool> = Default::default();
    let mut affected = BTreeSet::new();
    for id in history.iter() {
        let txn = arena.get(id);
        let is_bad = bad.contains(&id);
        let reads_tainted = !is_bad
            && txn.readset().iter().any(|var| tainted_writer.get(&var).copied().unwrap_or(false));
        if reads_tainted {
            affected.insert(id);
        }
        let taints = is_bad || affected.contains(&id);
        for var in txn.writeset().iter() {
            tainted_writer.insert(var, taints);
        }
    }
    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnKind, VarSet};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    /// A transaction reading `reads` and writing `writes` (writes must be a
    /// subset of reads ∪ writes; all written vars are read first).
    fn rw_txn(arena: &mut TxnArena, name: &str, reads: &[u32], writes: &[u32]) -> TxnId {
        let mut b = ProgramBuilder::new(name);
        let read_set: VarSet = reads.iter().chain(writes.iter()).map(|i| v(*i)).collect();
        for var in read_set.iter() {
            b = b.read(var);
        }
        for w in writes {
            b = b.update(v(*w), Expr::var(v(*w)) + Expr::konst(1));
        }
        let prog: Arc<Program> = Arc::new(b.build().unwrap());
        arena.alloc(|id| Transaction::new(id, name, TxnKind::Tentative, prog, vec![]))
    }

    #[test]
    fn reads_from_latest_writer() {
        let ex = crate::fixtures::example1();
        let [_, m2, m3, m4] = ex.m;
        let facts = reads_from_facts(&ex.arena, &ex.hm);
        // Tm4 reads d6; the latest preceding writer of d6 is Tm3 (not Tm2).
        assert!(facts.contains(&ReadsFrom { reader: m4, writer: m3, var: v(6) }));
        assert!(!facts.contains(&ReadsFrom { reader: m4, writer: m2, var: v(6) }));
        // Tm3 reads d5 from Tm2.
        assert!(facts.contains(&ReadsFrom { reader: m3, writer: m2, var: v(5) }));
    }

    #[test]
    fn no_fact_for_initial_state_reads() {
        let mut arena = TxnArena::new();
        let a = rw_txn(&mut arena, "A", &[0], &[]);
        let h = SerialHistory::from_order([a]);
        assert!(reads_from_facts(&arena, &h).is_empty());
    }

    #[test]
    fn example1_affected_set() {
        let ex = crate::fixtures::example1();
        let [m1, m2, m3, m4] = ex.m;
        // B = {Tm3} per the paper; the affected set is {Tm4}.
        let bad: BTreeSet<TxnId> = [m3].into_iter().collect();
        let ag = affected_set(&ex.arena, &ex.hm, &bad);
        assert_eq!(ag, [m4].into_iter().collect());
        assert!(!ag.contains(&m1));
        assert!(!ag.contains(&m2));
    }

    #[test]
    fn affected_set_is_transitive() {
        let mut arena = TxnArena::new();
        // B writes d0; T1 reads d0 writes d1; T2 reads d1 writes d2.
        let b = rw_txn(&mut arena, "B", &[], &[0]);
        let t1 = rw_txn(&mut arena, "T1", &[0], &[1]);
        let t2 = rw_txn(&mut arena, "T2", &[1], &[2]);
        let h = SerialHistory::from_order([b, t1, t2]);
        let bad: BTreeSet<TxnId> = [b].into_iter().collect();
        assert_eq!(affected_set(&arena, &h, &bad), [t1, t2].into_iter().collect());
    }

    #[test]
    fn overwrite_by_good_txn_cuts_taint() {
        let mut arena = TxnArena::new();
        // B writes d0; G1 writes d0 without reading it from B?  G1 must
        // read d0 (no blind writes), so G1 is affected — but G2, which
        // reads d0 from G1... is also affected (transitively). Contrast
        // with d1: B never touches it.
        let b = rw_txn(&mut arena, "B", &[], &[0]);
        let g1 = rw_txn(&mut arena, "G1", &[], &[1]);
        let g2 = rw_txn(&mut arena, "G2", &[1], &[]);
        let h = SerialHistory::from_order([b, g1, g2]);
        let bad: BTreeSet<TxnId> = [b].into_iter().collect();
        assert!(affected_set(&arena, &h, &bad).is_empty());
    }

    #[test]
    fn bad_transactions_never_in_ag() {
        let mut arena = TxnArena::new();
        let b1 = rw_txn(&mut arena, "B1", &[], &[0]);
        let b2 = rw_txn(&mut arena, "B2", &[0], &[1]);
        let h = SerialHistory::from_order([b1, b2]);
        let bad: BTreeSet<TxnId> = [b1, b2].into_iter().collect();
        assert!(affected_set(&arena, &h, &bad).is_empty());
    }
}
