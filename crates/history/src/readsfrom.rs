//! The reads-from relation and the affected set `AG`.
//!
//! The paper (footnote ‖) defines: transaction `T_j` *reads `x` from* `T_i`
//! if `T_j` reads `x` after `T_i` has updated `x` and no transaction updates
//! `x` in between. The *affected transactions* `AG` are the good
//! transactions in the reads-from transitive closure of the back-out set
//! `B`; the classical approach (Davidson 1984) backs out all of `B ∪ AG`.
//!
//! Relations here are computed over **static** read/write sets — the sets a
//! canned system extracts from transaction profiles offline (\[AJL98\], cited
//! in Section 7.1), so no read logging is needed at run time.

use std::collections::BTreeSet;

use histmerge_txn::{TxnId, VarId};

use crate::arena::TxnArena;
use crate::schedule::SerialHistory;

/// One reads-from fact: `reader` read `var` from `writer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReadsFrom {
    /// The transaction that read the value.
    pub reader: TxnId,
    /// The transaction that produced the value.
    pub writer: TxnId,
    /// The data item involved.
    pub var: VarId,
}

/// Computes every reads-from fact in a serial history.
///
/// For each transaction and each item in its read set, the writer is the
/// latest preceding transaction whose write set contains the item.
/// Transactions that read an item no one wrote earlier (they read from the
/// initial state) contribute no fact.
pub fn reads_from_facts(arena: &TxnArena, history: &SerialHistory) -> Vec<ReadsFrom> {
    let mut last_writer: std::collections::BTreeMap<VarId, TxnId> = Default::default();
    let mut facts = Vec::new();
    for id in history.iter() {
        let txn = arena.get(id);
        for var in txn.readset().iter() {
            if let Some(writer) = last_writer.get(&var) {
                facts.push(ReadsFrom { reader: id, writer: *writer, var });
            }
        }
        for var in txn.writeset().iter() {
            last_writer.insert(var, id);
        }
    }
    facts
}

/// Computes the affected set `AG`: every transaction *not in `bad`* that is
/// in the reads-from transitive closure of `bad`.
///
/// A single forward scan suffices for a serial history: a transaction is
/// affected as soon as it reads any item whose latest writer is in
/// `bad ∪ AG-so-far`. The taint map is a word-wise bitset over the arena's
/// dense variable index: per step one AND-any test against the read
/// footprint, then `tainted = (tainted & !writes) | (taints ? writes : 0)`
/// — identical answers to the per-variable `BTreeMap` scan.
///
/// # Example
///
/// In Example 1 of the paper, `Tm4` reads `d6` from `Tm3 ∈ B`, so
/// `AG = {Tm4}`.
pub fn affected_set(
    arena: &TxnArena,
    history: &SerialHistory,
    bad: &BTreeSet<TxnId>,
) -> BTreeSet<TxnId> {
    let mut tainted = vec![0u64; arena.var_count().div_ceil(64)];
    let mut affected = BTreeSet::new();
    for id in history.iter() {
        let is_bad = bad.contains(&id);
        let reads_tainted = !is_bad
            && arena.read_bits(id).words().iter().zip(tainted.iter()).any(|(r, t)| r & t != 0);
        if reads_tainted {
            affected.insert(id);
        }
        let taints = is_bad || reads_tainted;
        for (k, w) in arena.write_bits(id).words().iter().enumerate() {
            if taints {
                tainted[k] |= w;
            } else {
                tainted[k] &= !w;
            }
        }
    }
    affected
}

/// Reusable buffers for [`ClosureTable`] builds.
#[derive(Debug, Clone, Default)]
pub struct ClosureScratch {
    /// Last-writer position per dense variable index (`usize::MAX` = none).
    last_writer: Vec<usize>,
    /// One row of taint words, accumulated before committing to the table.
    row: Vec<u64>,
}

impl ClosureScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ClosureScratch::default()
    }
}

/// Per-position reads-from closures of one history, all at once.
///
/// The back-out weight needs `|AG({t})|` for *every* tentative transaction,
/// and merge step 2 then needs `AG(B)` for the chosen set — the seed walked
/// the forward-scan closure once per transaction, an `O(n² · sets)` pattern.
/// One table build is a single forward pass: row `i` is the bitset of
/// positions whose back-out would taint transaction `i`
/// (`T[i] = bit(i) ∪ ⋃_{v ∈ reads(i)} T[lastwriter(v)]`). Then
///
/// * `weight(p) = 1 + |{i ≠ p : p ∈ T[i]}|` — a column count, and
/// * `AG(P) = {i ∉ P : T[i] ∩ P ≠ ∅}` — one AND-any per row,
///
/// both byte-identical to the per-call [`affected_set`] answers (the
/// union-of-singleton-closures identity `AG(B) = (⋃_{b∈B} AG({b})) \ B`
/// holds because taint propagation is monotone and per-item last-writer
/// chains don't depend on which set is backed out).
#[derive(Debug, Clone)]
pub struct ClosureTable {
    order: Vec<TxnId>,
    stride: usize,
    /// `order.len()` rows of `stride` words each.
    taint: Vec<u64>,
}

impl ClosureTable {
    /// Builds the closure table for `history` over `arena`.
    pub fn build(arena: &TxnArena, history: &SerialHistory) -> Self {
        Self::build_with_scratch(arena, history, &mut ClosureScratch::new())
    }

    /// [`build`](Self::build) with caller-held reusable buffers.
    pub fn build_with_scratch(
        arena: &TxnArena,
        history: &SerialHistory,
        scratch: &mut ClosureScratch,
    ) -> Self {
        let order: Vec<TxnId> = history.iter().collect();
        let n = order.len();
        let stride = n.div_ceil(64).max(1);
        let mut taint = vec![0u64; n * stride];
        let lw = &mut scratch.last_writer;
        lw.clear();
        lw.resize(arena.var_count(), usize::MAX);
        let row = &mut scratch.row;
        row.clear();
        row.resize(stride, 0);
        for (i, &id) in order.iter().enumerate() {
            row.fill(0);
            for var in arena.read_bits(id).iter() {
                let w = lw[var as usize];
                if w != usize::MAX {
                    let src = &taint[w * stride..(w + 1) * stride];
                    for (acc, word) in row.iter_mut().zip(src) {
                        *acc |= word;
                    }
                }
            }
            row[i / 64] |= 1u64 << (i % 64);
            taint[i * stride..(i + 1) * stride].copy_from_slice(row);
            for var in arena.write_bits(id).iter() {
                lw[var as usize] = i;
            }
        }
        ClosureTable { order, stride, taint }
    }

    /// The history order the table was built over.
    pub fn order(&self) -> &[TxnId] {
        &self.order
    }

    /// The back-out weight `1 + |AG({order[p]})|` of the transaction at
    /// position `p` — a column count over the taint rows.
    pub fn weight_of_position(&self, p: usize) -> u64 {
        let word = p / 64;
        let bit = 1u64 << (p % 64);
        let mut count = 0u64;
        for i in 0..self.order.len() {
            if i != p && self.taint[i * self.stride + word] & bit != 0 {
                count += 1;
            }
        }
        1 + count
    }

    /// All back-out weights, keyed by transaction.
    pub fn weights(&self) -> std::collections::BTreeMap<TxnId, u64> {
        self.order.iter().enumerate().map(|(p, id)| (*id, self.weight_of_position(p))).collect()
    }

    /// The affected set `AG(bad)`: one AND-any per row against the mask of
    /// `bad` positions. Equals [`affected_set`] on the same inputs.
    pub fn affected_of(&self, bad: &BTreeSet<TxnId>) -> BTreeSet<TxnId> {
        let mut mask = vec![0u64; self.stride];
        for (i, id) in self.order.iter().enumerate() {
            if bad.contains(id) {
                mask[i / 64] |= 1u64 << (i % 64);
            }
        }
        let mut affected = BTreeSet::new();
        for (i, id) in self.order.iter().enumerate() {
            if bad.contains(id) {
                continue;
            }
            let row = &self.taint[i * self.stride..(i + 1) * self.stride];
            if row.iter().zip(mask.iter()).any(|(a, b)| a & b != 0) {
                affected.insert(*id);
            }
        }
        affected
    }
}

/// The back-out weights of just the transactions in `subset` — the same
/// `1 + |AG({t})|` numbers [`ClosureTable::weights`] reports, computed by
/// one forward pass that tracks taint for only the subset's columns:
/// `O(n · ⌈|subset|/64⌉)` words instead of the full table's
/// `O(n · ⌈n/64⌉)`. The merge-autopsy emitter uses this to re-derive the
/// weight charged to each backed-out transaction without rebuilding the
/// planner's whole closure table.
pub fn closure_weights_for(
    arena: &TxnArena,
    history: &SerialHistory,
    subset: &BTreeSet<TxnId>,
) -> std::collections::BTreeMap<TxnId, u64> {
    let order: Vec<TxnId> = history.iter().collect();
    let cols: Vec<usize> =
        order.iter().enumerate().filter(|(_, id)| subset.contains(id)).map(|(i, _)| i).collect();
    if cols.is_empty() {
        return std::collections::BTreeMap::new();
    }
    let stride = cols.len().div_ceil(64);
    let mut col_of = vec![usize::MAX; order.len()];
    for (j, &p) in cols.iter().enumerate() {
        col_of[p] = j;
    }
    let mut taint = vec![0u64; order.len() * stride];
    let mut lw = vec![usize::MAX; arena.var_count()];
    let mut row = vec![0u64; stride];
    let mut counts = vec![0u64; cols.len()];
    for (i, &id) in order.iter().enumerate() {
        row.fill(0);
        for var in arena.read_bits(id).iter() {
            let w = lw[var as usize];
            if w != usize::MAX {
                let src = &taint[w * stride..(w + 1) * stride];
                for (acc, word) in row.iter_mut().zip(src) {
                    *acc |= word;
                }
            }
        }
        if col_of[i] != usize::MAX {
            row[col_of[i] / 64] |= 1u64 << (col_of[i] % 64);
        }
        for (w, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                if cols[j] != i {
                    counts[j] += 1;
                }
                bits &= bits - 1;
            }
        }
        taint[i * stride..(i + 1) * stride].copy_from_slice(&row);
        for var in arena.write_bits(id).iter() {
            lw[var as usize] = i;
        }
    }
    cols.iter().zip(counts).map(|(&p, c)| (order[p], 1 + c)).collect()
}

#[cfg(test)]
mod closure_subset_tests {
    use super::*;

    #[test]
    fn subset_weights_match_the_full_table() {
        let ex = crate::fixtures::example1();
        let full = ClosureTable::build(&ex.arena, &ex.hm).weights();
        for id in ex.hm.iter() {
            let subset: BTreeSet<TxnId> = [id].into_iter().collect();
            let partial = closure_weights_for(&ex.arena, &ex.hm, &subset);
            assert_eq!(partial.get(&id), full.get(&id), "weight mismatch for {id:?}");
        }
        let all: BTreeSet<TxnId> = ex.hm.iter().collect();
        assert_eq!(closure_weights_for(&ex.arena, &ex.hm, &all), full);
    }

    #[test]
    fn empty_subset_is_empty() {
        let ex = crate::fixtures::example1();
        assert!(closure_weights_for(&ex.arena, &ex.hm, &BTreeSet::new()).is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnKind, VarSet};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    /// A transaction reading `reads` and writing `writes` (writes must be a
    /// subset of reads ∪ writes; all written vars are read first).
    fn rw_txn(arena: &mut TxnArena, name: &str, reads: &[u32], writes: &[u32]) -> TxnId {
        let mut b = ProgramBuilder::new(name);
        let read_set: VarSet = reads.iter().chain(writes.iter()).map(|i| v(*i)).collect();
        for var in read_set.iter() {
            b = b.read(var);
        }
        for w in writes {
            b = b.update(v(*w), Expr::var(v(*w)) + Expr::konst(1));
        }
        let prog: Arc<Program> = Arc::new(b.build().unwrap());
        arena.alloc(|id| Transaction::new(id, name, TxnKind::Tentative, prog, vec![]))
    }

    #[test]
    fn reads_from_latest_writer() {
        let ex = crate::fixtures::example1();
        let [_, m2, m3, m4] = ex.m;
        let facts = reads_from_facts(&ex.arena, &ex.hm);
        // Tm4 reads d6; the latest preceding writer of d6 is Tm3 (not Tm2).
        assert!(facts.contains(&ReadsFrom { reader: m4, writer: m3, var: v(6) }));
        assert!(!facts.contains(&ReadsFrom { reader: m4, writer: m2, var: v(6) }));
        // Tm3 reads d5 from Tm2.
        assert!(facts.contains(&ReadsFrom { reader: m3, writer: m2, var: v(5) }));
    }

    #[test]
    fn no_fact_for_initial_state_reads() {
        let mut arena = TxnArena::new();
        let a = rw_txn(&mut arena, "A", &[0], &[]);
        let h = SerialHistory::from_order([a]);
        assert!(reads_from_facts(&arena, &h).is_empty());
    }

    #[test]
    fn example1_affected_set() {
        let ex = crate::fixtures::example1();
        let [m1, m2, m3, m4] = ex.m;
        // B = {Tm3} per the paper; the affected set is {Tm4}.
        let bad: BTreeSet<TxnId> = [m3].into_iter().collect();
        let ag = affected_set(&ex.arena, &ex.hm, &bad);
        assert_eq!(ag, [m4].into_iter().collect());
        assert!(!ag.contains(&m1));
        assert!(!ag.contains(&m2));
    }

    #[test]
    fn affected_set_is_transitive() {
        let mut arena = TxnArena::new();
        // B writes d0; T1 reads d0 writes d1; T2 reads d1 writes d2.
        let b = rw_txn(&mut arena, "B", &[], &[0]);
        let t1 = rw_txn(&mut arena, "T1", &[0], &[1]);
        let t2 = rw_txn(&mut arena, "T2", &[1], &[2]);
        let h = SerialHistory::from_order([b, t1, t2]);
        let bad: BTreeSet<TxnId> = [b].into_iter().collect();
        assert_eq!(affected_set(&arena, &h, &bad), [t1, t2].into_iter().collect());
    }

    #[test]
    fn overwrite_by_good_txn_cuts_taint() {
        let mut arena = TxnArena::new();
        // B writes d0; G1 writes d0 without reading it from B?  G1 must
        // read d0 (no blind writes), so G1 is affected — but G2, which
        // reads d0 from G1... is also affected (transitively). Contrast
        // with d1: B never touches it.
        let b = rw_txn(&mut arena, "B", &[], &[0]);
        let g1 = rw_txn(&mut arena, "G1", &[], &[1]);
        let g2 = rw_txn(&mut arena, "G2", &[1], &[]);
        let h = SerialHistory::from_order([b, g1, g2]);
        let bad: BTreeSet<TxnId> = [b].into_iter().collect();
        assert!(affected_set(&arena, &h, &bad).is_empty());
    }

    #[test]
    fn bad_transactions_never_in_ag() {
        let mut arena = TxnArena::new();
        let b1 = rw_txn(&mut arena, "B1", &[], &[0]);
        let b2 = rw_txn(&mut arena, "B2", &[0], &[1]);
        let h = SerialHistory::from_order([b1, b2]);
        let bad: BTreeSet<TxnId> = [b1, b2].into_iter().collect();
        assert!(affected_set(&arena, &h, &bad).is_empty());
    }

    #[test]
    fn closure_table_matches_affected_set_on_every_subset() {
        let ex = crate::fixtures::example1();
        let table = ClosureTable::build(&ex.arena, &ex.hm);
        assert_eq!(table.order(), ex.hm.order());
        // All 16 subsets of {Tm1..Tm4}: one table serves every query the
        // per-call forward scan answers.
        for mask in 0u32..16 {
            let bad: BTreeSet<TxnId> =
                ex.m.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, id)| *id)
                    .collect();
            assert_eq!(
                table.affected_of(&bad),
                affected_set(&ex.arena, &ex.hm, &bad),
                "subset mask {mask}"
            );
        }
        // Weights are 1 + singleton-closure sizes (Example 1: 4/3/2/1).
        for (p, id) in ex.m.iter().enumerate() {
            let singleton: BTreeSet<TxnId> = [*id].into_iter().collect();
            let ag = affected_set(&ex.arena, &ex.hm, &singleton);
            assert_eq!(table.weight_of_position(p), 1 + ag.len() as u64);
        }
        assert_eq!(table.weights()[&ex.m[0]], 4);
    }

    #[test]
    fn closure_table_scratch_reuse_is_identical() {
        let ex = crate::fixtures::example1();
        let mut scratch = ClosureScratch::new();
        let fresh = ClosureTable::build(&ex.arena, &ex.hm);
        for _ in 0..3 {
            let reused = ClosureTable::build_with_scratch(&ex.arena, &ex.hm, &mut scratch);
            assert_eq!(reused.weights(), fresh.weights());
            // A shorter history right after must not see stale last-writers.
            let one = ClosureTable::build_with_scratch(
                &ex.arena,
                &SerialHistory::from_order([ex.m[3]]),
                &mut scratch,
            );
            assert_eq!(one.weight_of_position(0), 1);
        }
    }
}
