//! Transaction logs: the durable record the merging protocol parses.
//!
//! Section 7.1: "the cost of constructing `G(H_m, H_b)` ... can be built by
//! parsing the log for `H_m` and the log for `H_b` only once if read
//! operations (or read sets) are recorded in the log", and the mobile node
//! ships "the readset and writeset of each transaction in the tentative
//! history" to the base. This module provides that log: a compact,
//! serializable record per committed transaction with read/write sets and
//! before/after images — enough to rebuild the precedence graph, run undo
//! pruning, and account message sizes.

use serde::{Deserialize, Serialize};

use histmerge_txn::{TxnId, Value, VarId};

use crate::augmented::AugmentedHistory;
use crate::schedule::SerialHistory;

/// One committed transaction's log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// The transaction (dense index within its arena).
    pub txn: u32,
    /// Items read, with the values observed (fix material, Definition 1).
    pub reads: Vec<(u32, Value)>,
    /// Items written, with the values produced.
    pub writes: Vec<(u32, Value)>,
    /// Before-image over the written items (undo material, Section 6.2).
    pub before: Vec<(u32, Value)>,
}

impl LogRecord {
    /// The transaction id.
    pub fn txn_id(&self) -> TxnId {
        TxnId::new(self.txn)
    }

    /// Size in bytes when shipped to a base node, under the simple
    /// encoding of one `(u32, i64)` pair per entry plus a header.
    pub fn encoded_size(&self) -> usize {
        const HEADER: usize = 4 + 3 * 2; // txn id + three u16 lengths
        const ENTRY: usize = 4 + 8;
        HEADER + ENTRY * (self.reads.len() + self.writes.len() + self.before.len())
    }
}

/// The log of one history: per-transaction records in commit order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnLog {
    records: Vec<LogRecord>,
}

impl TxnLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TxnLog::default()
    }

    /// Extracts the log of an executed (augmented) history.
    pub fn from_augmented(history: &AugmentedHistory) -> TxnLog {
        let records = (0..history.len())
            .map(|i| {
                let (id, _) = history.entries()[i];
                let outcome = history.outcome(i);
                LogRecord {
                    txn: id.index(),
                    reads: outcome.reads.iter().map(|(v, x)| (v.index(), *x)).collect(),
                    writes: outcome.writes.iter().map(|(v, x)| (v.index(), *x)).collect(),
                    before: outcome
                        .writes
                        .keys()
                        .map(|v| (v.index(), outcome.before_image.get(*v)))
                        .collect(),
                }
            })
            .collect();
        TxnLog { records }
    }

    /// Appends a record.
    pub fn append(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// The records in commit order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The serial history recorded in the log.
    pub fn serial_history(&self) -> SerialHistory {
        self.records.iter().map(LogRecord::txn_id).collect()
    }

    /// Total bytes when shipped to a base node (the protocol-step-1 upload
    /// the Section 7.1 communication comparison charges).
    pub fn encoded_size(&self) -> usize {
        self.records.iter().map(LogRecord::encoded_size).sum()
    }

    /// Total read/write-set entries (the `rw_entries` input of the cost
    /// model).
    pub fn rw_entries(&self) -> usize {
        self.records.iter().map(|r| r.reads.len() + r.writes.len()).sum()
    }

    /// The value `txn` observed for `var`, if logged — fix material.
    pub fn logged_read(&self, txn: TxnId, var: VarId) -> Option<Value> {
        self.records
            .iter()
            .find(|r| r.txn_id() == txn)?
            .reads
            .iter()
            .find(|(v, _)| *v == var.index())
            .map(|(_, x)| *x)
    }

    /// The before-image value `txn` logged for `var`, if it wrote it —
    /// undo material.
    pub fn before_image(&self, txn: TxnId, var: VarId) -> Option<Value> {
        self.records
            .iter()
            .find(|r| r.txn_id() == txn)?
            .before
            .iter()
            .find(|(v, _)| *v == var.index())
            .map(|(_, x)| *x)
    }

    /// REDO recovery: replays the logged writes onto `initial`, in commit
    /// order, returning the recovered state. This is pure log application —
    /// no transaction re-execution — so it works even when the programs are
    /// no longer available (e.g. after a base-node restart).
    pub fn redo(&self, initial: &crate::augmented::AugmentedHistory) -> histmerge_txn::DbState {
        self.redo_onto(initial.initial_state().clone())
    }

    /// REDO recovery onto an explicit initial state.
    pub fn redo_onto(&self, mut state: histmerge_txn::DbState) -> histmerge_txn::DbState {
        for record in &self.records {
            for (var, value) in &record.writes {
                state.set(VarId::new(*var), *value);
            }
        }
        state
    }

    /// UNDO recovery: rolls the final state back to just before the
    /// `from`-th record by restoring before-images in reverse commit order
    /// (the crash-recovery twin of Section 6.2's pruning undo).
    pub fn undo_to(
        &self,
        mut final_state: histmerge_txn::DbState,
        from: usize,
    ) -> histmerge_txn::DbState {
        for record in self.records.iter().skip(from).rev() {
            for (var, value) in &record.before {
                final_state.set(VarId::new(*var), *value);
            }
        }
        final_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::example1;

    #[test]
    fn log_captures_history() {
        let ex = example1();
        let aug = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let log = TxnLog::from_augmented(&aug);
        assert_eq!(log.len(), 4);
        assert_eq!(log.serial_history().order(), ex.hm.order());
        assert!(!log.is_empty());
    }

    #[test]
    fn logged_reads_match_execution() {
        let ex = example1();
        let aug = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let log = TxnLog::from_augmented(&aug);
        // Tm3 read d5 — the value Tm2 wrote.
        let d5 = histmerge_txn::VarId::new(5);
        let expected = aug.original_read(ex.m[2], d5).unwrap();
        assert_eq!(log.logged_read(ex.m[2], d5), Some(expected));
        // Items never read return None.
        assert_eq!(log.logged_read(ex.m[2], histmerge_txn::VarId::new(0)), None);
        assert_eq!(log.logged_read(histmerge_txn::TxnId::new(99), d5), None);
    }

    #[test]
    fn before_images_enable_undo() {
        let ex = example1();
        let aug = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let log = TxnLog::from_augmented(&aug);
        // Tm4 wrote d6; its before image is Tm3's output for d6.
        let d6 = histmerge_txn::VarId::new(6);
        let pos = aug.position(ex.m[3]).unwrap();
        assert_eq!(log.before_image(ex.m[3], d6), Some(aug.before_state(pos).get(d6)));
        assert_eq!(log.before_image(ex.m[3], histmerge_txn::VarId::new(1)), None);
    }

    #[test]
    fn encoded_sizes_are_positive_and_additive() {
        let ex = example1();
        let aug = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let log = TxnLog::from_augmented(&aug);
        let total = log.encoded_size();
        let sum: usize = log.records().iter().map(LogRecord::encoded_size).sum();
        assert_eq!(total, sum);
        assert!(total > 0);
        assert!(log.rw_entries() >= 8);
    }

    #[test]
    fn redo_recovers_final_state() {
        let ex = example1();
        let aug = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let log = TxnLog::from_augmented(&aug);
        // Pure log application reproduces the executed final state.
        assert_eq!(&log.redo(&aug), aug.final_state());
        assert_eq!(&log.redo_onto(ex.s0.clone()), aug.final_state());
    }

    #[test]
    fn undo_to_rolls_back_a_suffix() {
        let ex = example1();
        let aug = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let log = TxnLog::from_augmented(&aug);
        // Undo everything: back to s0.
        assert_eq!(log.undo_to(aug.final_state().clone(), 0), ex.s0);
        // Undo the last two (Tm3, Tm4): the state after Tm2.
        assert_eq!(log.undo_to(aug.final_state().clone(), 2), aug.after_state(1));
        // Undo nothing.
        assert_eq!(&log.undo_to(aug.final_state().clone(), 4), aug.final_state());
    }

    #[test]
    fn append_extends() {
        let mut log = TxnLog::new();
        assert!(log.is_empty());
        log.append(LogRecord { txn: 7, reads: vec![(0, 1)], writes: vec![], before: vec![] });
        assert_eq!(log.len(), 1);
        assert_eq!(log.serial_history().order(), &[TxnId::new(7)]);
        assert_eq!(log.logged_read(TxnId::new(7), VarId::new(0)), Some(1));
    }
}
