//! Augmented histories: serial histories with explicit interleaved states.
//!
//! The explicit states of Section 3 (`s0 T1 s1 T2 s2 ...`) are the
//! *semantics* of an augmented history, not its storage. Executing an
//! `n`-transaction history used to clone a full [`DbState`] per step —
//! O(n · |database|) — which dominated the merge hot path. The history now
//! executes through one copy-on-write [`OverlayState`], stores the initial
//! and final states plus a per-step [`StepRecord`] (observed reads/writes
//! and before/after images over each transaction's static footprint), and
//! *derives* any intermediate state on demand from a per-variable write
//! index. Outcomes are byte-identical to the clone-per-step execution;
//! `tests/footprint_differential.rs` holds that contract.

use std::collections::BTreeMap;
use std::fmt;

use histmerge_txn::{DbState, Fix, OverlayState, TxnError, TxnId, Value, VarId, VarSet};

use crate::arena::TxnArena;
use crate::schedule::SerialHistory;

/// Errors raised when constructing or comparing augmented histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// A transaction failed to execute.
    Execution {
        /// The transaction that failed.
        txn: TxnId,
        /// The underlying interpreter error.
        source: TxnError,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Execution { txn, source } => {
                write!(f, "executing {txn} failed: {source}")
            }
        }
    }
}

impl std::error::Error for HistoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HistoryError::Execution { source, .. } => Some(source),
        }
    }
}

/// The execution record of one history step: what the transaction
/// observed and the before/after images over its static footprint —
/// exactly the log information the undo approach of Section 6.2 needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// The values the transaction observed for each item it read, in the
    /// position it executed (fix values for pinned items).
    pub reads: BTreeMap<VarId, Value>,
    /// The values the transaction wrote.
    pub writes: BTreeMap<VarId, Value>,
    /// Items actually read on the taken path (⊆ static read set).
    pub observed_readset: VarSet,
    /// Items actually written on the taken path (⊆ static write set).
    pub observed_writeset: VarSet,
    /// Before image over the transaction's static read ∪ write set.
    pub before_image: DbState,
    /// After image over the static read ∪ write set.
    pub after_image: DbState,
}

impl StepRecord {
    /// Convenience: the value this step observed for `var`, if it read it.
    pub fn read_value(&self, var: VarId) -> Option<Value> {
        self.reads.get(&var).copied()
    }

    /// Convenience: the value this step wrote to `var`, if it wrote it.
    pub fn written_value(&self, var: VarId) -> Option<Value> {
        self.writes.get(&var).copied()
    }
}

/// A serial history *augmented* with explicit database states
/// (Section 3 of the paper: `H^s = s0 T1 s1 T2 s2 ...`).
///
/// Each entry pairs a transaction with the [`Fix`] it executed under (the
/// empty fix for an original history) and records its [`StepRecord`] —
/// observed reads/writes and before/after images. Intermediate states are
/// derived on demand (see [`AugmentedHistory::before_state`] and the
/// cheaper [`AugmentedHistory::value_before`]); only the initial and
/// final states are stored whole.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{DbState, Expr, Fix, ProgramBuilder, Transaction, TxnKind, VarId};
/// use histmerge_history::{AugmentedHistory, SerialHistory, TxnArena};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = VarId::new(0);
/// let inc = std::sync::Arc::new(
///     ProgramBuilder::new("inc").read(x).update(x, Expr::var(x) + Expr::konst(1)).build()?,
/// );
/// let mut arena = TxnArena::new();
/// let t0 = arena.alloc(|id| Transaction::new(id, "T0", TxnKind::Tentative, inc.clone(), vec![]));
/// let t1 = arena.alloc(|id| Transaction::new(id, "T1", TxnKind::Tentative, inc.clone(), vec![]));
/// let s0: DbState = [(x, 0)].into_iter().collect();
/// let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([t0, t1]), &s0)?;
/// assert_eq!(h.final_state().get(x), 2);
/// assert_eq!(h.before_state(1).get(x), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AugmentedHistory {
    entries: Vec<(TxnId, Fix)>,
    initial: DbState,
    final_state: DbState,
    steps: Vec<StepRecord>,
    /// Per-variable change index: ascending `(step, value written)` pairs.
    /// `value_before(i, var)` is a binary search here instead of a stored
    /// state per step.
    writes_at: BTreeMap<VarId, Vec<(u32, Value)>>,
}

impl AugmentedHistory {
    /// Executes a serial history from `initial` with every fix empty (the
    /// ordinary case: "for ordinary serializable execution histories, each
    /// such fix is the empty fix").
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::Execution`] if any transaction fails (e.g.
    /// the state lacks a variable in its read set).
    pub fn execute(
        arena: &TxnArena,
        history: &SerialHistory,
        initial: &DbState,
    ) -> Result<Self, HistoryError> {
        let entries: Vec<(TxnId, Fix)> = history.iter().map(|id| (id, Fix::empty())).collect();
        Self::execute_with_fixes(arena, &entries, initial)
    }

    /// Executes a sequence of `(transaction, fix)` entries from `initial`.
    /// This is how rewritten histories (whose repositioned transactions
    /// carry non-empty fixes) are materialized and checked.
    ///
    /// The whole history runs through one copy-on-write overlay: per step
    /// it records O(footprint) image data and applies O(written items),
    /// instead of cloning the full state.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::Execution`] if any transaction fails.
    pub fn execute_with_fixes(
        arena: &TxnArena,
        entries: &[(TxnId, Fix)],
        initial: &DbState,
    ) -> Result<Self, HistoryError> {
        let mut steps = Vec::with_capacity(entries.len());
        let mut writes_at: BTreeMap<VarId, Vec<(u32, Value)>> = BTreeMap::new();
        let mut view = OverlayState::new(initial);
        for (i, (id, fix)) in entries.iter().enumerate() {
            let txn = arena.get(*id);
            let footprint = txn.footprint();
            let before_image = view.project(footprint);
            let delta = txn
                .execute_delta(&view, fix)
                .map_err(|source| HistoryError::Execution { txn: *id, source })?;
            view.apply_writes(&delta.writes);
            let after_image = view.project(footprint);
            for (var, value) in &delta.writes {
                writes_at.entry(*var).or_default().push((i as u32, *value));
            }
            steps.push(StepRecord {
                reads: delta.reads,
                writes: delta.writes,
                observed_readset: delta.observed_readset,
                observed_writeset: delta.observed_writeset,
                before_image,
                after_image,
            });
        }
        Ok(AugmentedHistory {
            entries: entries.to_vec(),
            initial: initial.clone(),
            final_state: view.materialize(),
            steps,
            writes_at,
        })
    }

    /// The `(transaction, fix)` entries in execution order.
    pub fn entries(&self) -> &[(TxnId, Fix)] {
        &self.entries
    }

    /// The serial order, without fixes.
    pub fn order(&self) -> SerialHistory {
        self.entries.iter().map(|(id, _)| *id).collect()
    }

    /// Number of transactions executed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the history is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value `var` holds just before the `i`-th transaction executes:
    /// the latest write at a step `< i`, falling back to the initial
    /// state. A binary search over the variable's change index — the
    /// cheap point query the rewriting algorithms use for fix pins.
    pub fn value_before(&self, i: usize, var: VarId) -> Option<Value> {
        if let Some(changes) = self.writes_at.get(&var) {
            let upto = changes.partition_point(|(step, _)| (*step as usize) < i);
            if upto > 0 {
                return Some(changes[upto - 1].1);
            }
        }
        self.initial.try_get(var)
    }

    /// Materializes the *before state* of the `i`-th transaction (the
    /// initial state with every write at steps `< i` applied).
    pub fn before_state(&self, i: usize) -> DbState {
        let mut state = self.initial.clone();
        for (var, changes) in &self.writes_at {
            let upto = changes.partition_point(|(step, _)| (*step as usize) < i);
            if upto > 0 {
                state.set(*var, changes[upto - 1].1);
            }
        }
        state
    }

    /// Materializes the *after state* of the `i`-th transaction.
    pub fn after_state(&self, i: usize) -> DbState {
        self.before_state(i + 1)
    }

    /// The initial state `s0`.
    pub fn initial_state(&self) -> &DbState {
        &self.initial
    }

    /// The final state of the history.
    pub fn final_state(&self) -> &DbState {
        &self.final_state
    }

    /// The execution record of the `i`-th transaction.
    pub fn outcome(&self, i: usize) -> &StepRecord {
        &self.steps[i]
    }

    /// The position of `id` in this history, if present.
    pub fn position(&self, id: TxnId) -> Option<usize> {
        self.entries.iter().position(|(t, _)| *t == id)
    }

    /// The value `id` read for `var` in its original position, if it read
    /// it — the ingredient of every fix (Definition 1: "`v_i` is what `T_i`
    /// read for `x_i` in the original history").
    pub fn original_read(&self, id: TxnId, var: VarId) -> Option<Value> {
        let pos = self.position(id)?;
        self.steps[pos].read_value(var)
    }

    /// Two augmented histories are **final state equivalent** if they are
    /// over the same set of transactions and their final states are
    /// identical (Section 3). Final-state equivalent histories need not be
    /// conflict or view equivalent.
    pub fn final_state_equivalent(&self, other: &AugmentedHistory) -> bool {
        let mut a: Vec<TxnId> = self.entries.iter().map(|(t, _)| *t).collect();
        let mut b: Vec<TxnId> = other.entries.iter().map(|(t, _)| *t).collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b && self.final_state() == other.final_state()
    }
}

/// Executes `history` from `initial` and returns only the final state —
/// the log-free fast path for callers that never look at intermediate
/// states or step records (e.g. deriving `H_b`'s final state during a
/// merge, or convergence replay checks). One overlay, no per-step images,
/// one materialization.
///
/// # Errors
///
/// Returns [`HistoryError::Execution`] if any transaction fails, exactly
/// as [`AugmentedHistory::execute`] would.
pub fn run_to_final(
    arena: &TxnArena,
    history: &SerialHistory,
    initial: &DbState,
) -> Result<DbState, HistoryError> {
    let mut view = OverlayState::new(initial);
    let empty = Fix::empty();
    for id in history.iter() {
        let txn = arena.get(id);
        let delta = txn
            .execute_delta(&view, &empty)
            .map_err(|source| HistoryError::Execution { txn: id, source })?;
        view.apply_writes(&delta.writes);
    }
    Ok(view.materialize())
}

impl fmt::Display for AugmentedHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s0")?;
        for (i, (id, fix)) in self.entries.iter().enumerate() {
            if fix.is_empty() {
                write!(f, " {id} s{}", i + 1)?;
            } else {
                write!(f, " {id}^{fix} s{}", i + 1)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnKind};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    /// Builds the Section 3 example: B1, G2 over {x, y, z}.
    fn section3() -> (TxnArena, TxnId, TxnId, DbState) {
        let b1: Arc<Program> = Arc::new(
            ProgramBuilder::new("B1")
                .read(v(0))
                .read(v(1))
                .read(v(2))
                .branch(
                    Expr::var(v(0)).gt(Expr::konst(0)),
                    |b| b.update(v(1), Expr::var(v(1)) + Expr::var(v(2)) + Expr::konst(3)),
                    |b| b,
                )
                .build()
                .unwrap(),
        );
        let g2: Arc<Program> = Arc::new(
            ProgramBuilder::new("G2")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) - Expr::konst(1))
                .build()
                .unwrap(),
        );
        let mut arena = TxnArena::new();
        let tb = arena.alloc(|id| Transaction::new(id, "B1", TxnKind::Tentative, b1, vec![]));
        let tg = arena.alloc(|id| Transaction::new(id, "G2", TxnKind::Tentative, g2, vec![]));
        let s0: DbState = [(v(0), 1), (v(1), 7), (v(2), 2)].into_iter().collect();
        (arena, tb, tg, s0)
    }

    #[test]
    fn augmented_states_match_paper() {
        let (arena, b1, g2, s0) = section3();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([b1, g2]), &s0).unwrap();
        assert_eq!(h.len(), 2);
        // s1 = {x=1; y=12; z=2}
        assert_eq!(h.after_state(0).get(v(1)), 12);
        assert_eq!(h.after_state(0).get(v(0)), 1);
        // s2 = {x=0; y=12; z=2}
        assert_eq!(h.final_state().get(v(0)), 0);
        assert_eq!(h.final_state().get(v(1)), 12);
        assert_eq!(h.initial_state(), &s0);
        assert_eq!(h.before_state(1), h.after_state(0));
    }

    #[test]
    fn derived_states_match_replayed_prefixes() {
        let (arena, b1, g2, s0) = section3();
        let order = SerialHistory::from_order([b1, g2, b1, g2]);
        // b1/g2 appear twice; positions are what matters here, so build
        // the entries directly.
        let entries: Vec<(TxnId, Fix)> = order.iter().map(|id| (id, Fix::empty())).collect();
        let h = AugmentedHistory::execute_with_fixes(&arena, &entries, &s0).unwrap();
        // Every derived before/after state equals the prefix replay.
        for i in 0..h.len() {
            let prefix = order.prefix(i);
            let replay = run_to_final(&arena, &prefix, &s0).unwrap();
            assert_eq!(h.before_state(i), replay, "before_state({i})");
            for (var, val) in replay.iter() {
                assert_eq!(h.value_before(i, var), Some(val), "value_before({i}, {var})");
            }
        }
        assert_eq!(&h.after_state(h.len() - 1), h.final_state());
        assert_eq!(h.value_before(0, v(9)), None);
    }

    #[test]
    fn run_to_final_matches_full_execution() {
        let (arena, b1, g2, s0) = section3();
        let order = SerialHistory::from_order([b1, g2]);
        let h = AugmentedHistory::execute(&arena, &order, &s0).unwrap();
        assert_eq!(&run_to_final(&arena, &order, &s0).unwrap(), h.final_state());
        // And it propagates execution errors identically.
        let empty = DbState::new();
        assert!(run_to_final(&arena, &order, &empty).is_err());
    }

    #[test]
    fn swap_without_fix_not_equivalent_with_fix_equivalent() {
        let (arena, b1, g2, s0) = section3();
        let original =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([b1, g2]), &s0).unwrap();
        // H2 = G2 B1 (no fix): differs in final state.
        let swapped =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([g2, b1]), &s0).unwrap();
        assert!(!original.final_state_equivalent(&swapped));
        // H3 = G2 B1^{x=1}: final state equivalent.
        let fix: Fix = [(v(0), 1)].into_iter().collect();
        let fixed =
            AugmentedHistory::execute_with_fixes(&arena, &[(g2, Fix::empty()), (b1, fix)], &s0)
                .unwrap();
        assert!(original.final_state_equivalent(&fixed));
    }

    #[test]
    fn final_state_equivalence_requires_same_txn_set() {
        let (arena, b1, g2, s0) = section3();
        let h1 =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([b1, g2]), &s0).unwrap();
        let h2 = AugmentedHistory::execute(&arena, &SerialHistory::from_order([g2]), &s0).unwrap();
        // Different transaction sets: never equivalent, even if states matched.
        assert!(!h1.final_state_equivalent(&h2));
    }

    #[test]
    fn original_read_values() {
        let (arena, b1, g2, s0) = section3();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([b1, g2]), &s0).unwrap();
        assert_eq!(h.original_read(b1, v(0)), Some(1));
        assert_eq!(h.original_read(g2, v(0)), Some(1));
        assert_eq!(h.original_read(b1, v(9)), None);
        assert_eq!(h.position(g2), Some(1));
    }

    #[test]
    fn execution_error_names_transaction() {
        let (arena, b1, _, _) = section3();
        let empty = DbState::new();
        let err = AugmentedHistory::execute(&arena, &SerialHistory::from_order([b1]), &empty)
            .unwrap_err();
        assert!(matches!(err, HistoryError::Execution { txn, .. } if txn == b1));
        assert!(err.to_string().contains("T0"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn display_marks_fixes() {
        let (arena, b1, g2, s0) = section3();
        let fix: Fix = [(v(0), 1)].into_iter().collect();
        let h = AugmentedHistory::execute_with_fixes(&arena, &[(g2, Fix::empty()), (b1, fix)], &s0)
            .unwrap();
        let text = h.to_string();
        assert!(text.starts_with("s0 T1 s1"));
        assert!(text.contains("T0^{(d0, 1)}"));
    }

    #[test]
    fn empty_history() {
        let (arena, _, _, s0) = section3();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::new(), &s0).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.final_state(), &s0);
        assert_eq!(h.order().len(), 0);
    }
}
