//! Reusable scenarios from the paper, for tests, examples, and benchmarks.

use std::sync::Arc;

use histmerge_txn::{DbState, Expr, Program, ProgramBuilder, Transaction, TxnId, TxnKind, VarId};

use crate::arena::TxnArena;
use crate::schedule::SerialHistory;

/// Example 1 of the paper, fully materialized.
///
/// Read/write sets (Section 2.1; the paper's list omits `READSET(Tm3)` but
/// its Figure 1 discussion says "Tm3 read the item d5 which is then updated
/// by Tb1", so `READSET(Tm3) = {d5}`):
///
/// ```text
/// READSET(Tm1) = WRITESET(Tm1) = {d1, d2}
/// READSET(Tm2) = {d2, d3}, WRITESET(Tm2) = {d3, d4, d5, d6}
/// READSET(Tm3) = {d5},     WRITESET(Tm3) = {d4, d6}
/// READSET(Tm4) = WRITESET(Tm4) = {d6}
/// READSET(Tb1) = WRITESET(Tb1) = {d5}
/// READSET(Tb2) = {d1, d5}, WRITESET(Tb2) = {}
/// H_m = Tm1 Tm2 Tm3 Tm4,  H_b = Tb1 Tb2
/// ```
///
/// `Tm2` and `Tm3` blind-write some items, exactly as the paper's sets
/// require. The concrete programs are arbitrary integer arithmetic
/// honouring those sets.
#[derive(Debug, Clone)]
pub struct Example1 {
    /// Arena owning all six transactions.
    pub arena: TxnArena,
    /// Tentative history `Tm1 Tm2 Tm3 Tm4`.
    pub hm: SerialHistory,
    /// Base history `Tb1 Tb2`.
    pub hb: SerialHistory,
    /// `[Tm1, Tm2, Tm3, Tm4]`.
    pub m: [TxnId; 4],
    /// `[Tb1, Tb2]`.
    pub b: [TxnId; 2],
    /// A common initial state over `d0..d7` (`d0` and `d7` are unused
    /// padding items proving merges leave unrelated data alone).
    pub s0: DbState,
}

/// Builds [`Example1`].
pub fn example1() -> Example1 {
    let d = |i: u32| VarId::new(i);
    let mut arena = TxnArena::new();

    // Tm1: reads/writes {d1, d2}.
    let tm1: Arc<Program> = Arc::new(
        ProgramBuilder::new("Tm1")
            .read(d(1))
            .read(d(2))
            .update(d(1), Expr::var(d(1)) + Expr::konst(10))
            .update(d(2), Expr::var(d(2)) + Expr::var(d(1)))
            .build()
            .expect("Tm1 is well formed"),
    );
    // Tm2: reads {d2, d3}; writes {d3, d4, d5, d6} (d4, d5, d6 blindly).
    let tm2: Arc<Program> = Arc::new(
        ProgramBuilder::new("Tm2")
            .allow_blind_writes()
            .read(d(2))
            .read(d(3))
            .update(d(3), Expr::var(d(3)) + Expr::var(d(2)))
            .update(d(4), Expr::var(d(2)) * Expr::konst(2))
            .update(d(5), Expr::var(d(3)) + Expr::konst(1))
            .update(d(6), Expr::konst(50))
            .build()
            .expect("Tm2 is well formed"),
    );
    // Tm3: reads {d5}; writes {d4, d6} (both blindly).
    let tm3: Arc<Program> = Arc::new(
        ProgramBuilder::new("Tm3")
            .allow_blind_writes()
            .read(d(5))
            .update(d(4), Expr::var(d(5)) + Expr::konst(3))
            .update(d(6), Expr::var(d(5)) * Expr::konst(2))
            .build()
            .expect("Tm3 is well formed"),
    );
    // Tm4: reads/writes {d6}.
    let tm4: Arc<Program> = Arc::new(
        ProgramBuilder::new("Tm4")
            .read(d(6))
            .update(d(6), Expr::var(d(6)) + Expr::konst(7))
            .build()
            .expect("Tm4 is well formed"),
    );
    // Tb1: reads/writes {d5}.
    let tb1: Arc<Program> = Arc::new(
        ProgramBuilder::new("Tb1")
            .read(d(5))
            .update(d(5), Expr::var(d(5)) + Expr::konst(100))
            .build()
            .expect("Tb1 is well formed"),
    );
    // Tb2: reads {d1, d5}, read-only.
    let tb2: Arc<Program> = Arc::new(
        ProgramBuilder::new("Tb2").read(d(1)).read(d(5)).build().expect("Tb2 is well formed"),
    );

    let m1 = arena.alloc(|id| Transaction::new(id, "Tm1", TxnKind::Tentative, tm1, vec![]));
    let m2 = arena.alloc(|id| Transaction::new(id, "Tm2", TxnKind::Tentative, tm2, vec![]));
    let m3 = arena.alloc(|id| Transaction::new(id, "Tm3", TxnKind::Tentative, tm3, vec![]));
    let m4 = arena.alloc(|id| Transaction::new(id, "Tm4", TxnKind::Tentative, tm4, vec![]));
    let b1 = arena.alloc(|id| Transaction::new(id, "Tb1", TxnKind::Base, tb1, vec![]));
    let b2 = arena.alloc(|id| Transaction::new(id, "Tb2", TxnKind::Base, tb2, vec![]));

    let s0: DbState = (0..8).map(|i| (d(i), 10 * i as i64)).collect();

    Example1 {
        arena,
        hm: SerialHistory::from_order([m1, m2, m3, m4]),
        hb: SerialHistory::from_order([b1, b2]),
        m: [m1, m2, m3, m4],
        b: [b1, b2],
        s0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_match_paper() {
        let ex = example1();
        let d = |i: u32| VarId::new(i);
        let t = |id| ex.arena.get(id);
        assert_eq!(t(ex.m[0]).readset(), &[d(1), d(2)].into_iter().collect());
        assert_eq!(t(ex.m[0]).writeset(), &[d(1), d(2)].into_iter().collect());
        assert_eq!(t(ex.m[1]).readset(), &[d(2), d(3)].into_iter().collect());
        assert_eq!(t(ex.m[1]).writeset(), &[d(3), d(4), d(5), d(6)].into_iter().collect());
        assert_eq!(t(ex.m[2]).readset(), &[d(5)].into_iter().collect());
        assert_eq!(t(ex.m[2]).writeset(), &[d(4), d(6)].into_iter().collect());
        assert_eq!(t(ex.m[3]).readset(), &[d(6)].into_iter().collect());
        assert_eq!(t(ex.m[3]).writeset(), &[d(6)].into_iter().collect());
        assert_eq!(t(ex.b[0]).readset(), &[d(5)].into_iter().collect());
        assert_eq!(t(ex.b[0]).writeset(), &[d(5)].into_iter().collect());
        assert_eq!(t(ex.b[1]).readset(), &[d(1), d(5)].into_iter().collect());
        assert!(t(ex.b[1]).writeset().is_empty());
    }

    #[test]
    fn histories_execute_from_s0() {
        let ex = example1();
        let hm = crate::AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let hb = crate::AugmentedHistory::execute(&ex.arena, &ex.hb, &ex.s0).unwrap();
        assert_eq!(hm.len(), 4);
        assert_eq!(hb.len(), 2);
        // Tb1 bumped d5 by 100 on the base copy.
        assert_eq!(hb.final_state().get(VarId::new(5)), ex.s0.get(VarId::new(5)) + 100);
    }
}
