//! The precedence graph `G(H_m, H_b)` of Section 2.1 (after Davidson 1984).
//!
//! Given a tentative history `H_m` and a base history `H_b` that started
//! from the same database state, the graph has one node per transaction and
//! three kinds of edges:
//!
//! 1. `T_i → T_j` for tentative `T_i`, `T_j` with conflicting operations,
//!    `T_i` preceding `T_j` in `H_m`;
//! 2. `T_i → T_j` for base transactions likewise (order in `H_b`);
//! 3. cross edges: `T_m → T_b` if tentative `T_m` read an item that base
//!    `T_b` updated (the tentative read saw the pre-base value, so `T_m`
//!    must serialize before `T_b`), and symmetrically `T_b → T_m`.
//!
//! **Theorem 1**: `G(H_m, H_b)` is acyclic iff `H_m` and `H_b` are
//! serializable, i.e. equivalent to some merged history `H` — which
//! [`PrecedenceGraph::merged_history`] then produces by topological sort.

use std::collections::BTreeSet;
use std::fmt;

use histmerge_txn::{TxnId, TxnKind};

use crate::arena::TxnArena;
use crate::footprint::DenseBits;
use crate::schedule::SerialHistory;

/// Why an edge is in the precedence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Conflicting tentative transactions, ordered by `H_m` (rule 1).
    MobileConflict,
    /// Conflicting base transactions, ordered by `H_b` (rule 2).
    BaseConflict,
    /// A tentative transaction read an item a base transaction updated
    /// (rule 3, `T_m → T_b`).
    MobileReadBase,
    /// A base transaction read an item a tentative transaction updated
    /// (rule 3, `T_b → T_m`).
    BaseReadMobile,
}

impl EdgeKind {
    /// The rule's stable label, as rendered in traces and merge
    /// autopsies.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::MobileConflict => "mobile-conflict",
            EdgeKind::BaseConflict => "base-conflict",
            EdgeKind::MobileReadBase => "mobile-read-base",
            EdgeKind::BaseReadMobile => "base-read-mobile",
        }
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reusable scratch for repeated graph builds: the id → node-index map as
/// a generation-stamped flat vector, so back-to-back merges over one arena
/// stop allocating (and rebalancing) a `BTreeMap` per build.
#[derive(Debug, Clone, Default)]
pub struct GraphScratch {
    /// `TxnId` slot → node index, valid only when the stamp matches the
    /// current generation.
    index: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
}

impl GraphScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        GraphScratch::default()
    }

    /// Starts a new build over an arena with `arena_len` transactions.
    fn begin(&mut self, arena_len: usize) {
        if self.index.len() < arena_len {
            self.index.resize(arena_len, 0);
            self.stamp.resize(arena_len, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Generation counter wrapped: old stamps could collide, so
            // reset them all once.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
    }

    fn record(&mut self, id: TxnId, node: usize) {
        let slot = id.index() as usize;
        self.index[slot] = node as u32;
        self.stamp[slot] = self.generation;
    }

    fn index_of(&self, id: TxnId) -> usize {
        let slot = id.index() as usize;
        debug_assert_eq!(self.stamp[slot], self.generation, "node present");
        self.index[slot] as usize
    }
}

/// Incrementally maintained rule-2 (base-conflict) edges of one epoch's
/// base history.
///
/// [`PrecedenceGraph::build`] recomputes the `O(|H_b|²)` pairwise base
/// conflicts on every merge, even though within a window `H_b` only ever
/// *grows*. A `BaseEdgeCache` is kept per epoch: appending a suffix of `k`
/// new base transactions costs `O(k · |H_b|)` comparisons once, and every
/// merge in the window (serial or batched) then reads its rule-2 edges —
/// for any prefix of the cached history — in `O(edges)`.
///
/// Edge counts are tracked cumulatively per prefix, so graphs built from
/// the cache report byte-identical edge sets to the from-scratch build.
#[derive(Debug, Clone, Default)]
pub struct BaseEdgeCache {
    txns: Vec<TxnId>,
    /// Conflicting index pairs `(i, j)` with `i < j`, grouped by `j` in
    /// append order (so the pairs among any prefix form a prefix of this
    /// vector).
    pairs: Vec<(usize, usize)>,
    /// `edges_upto[k]` = number of pairs whose later member is `< k`.
    edges_upto: Vec<usize>,
    /// Union of every cached transaction's read∪write bitset — the whole
    /// epoch slice's footprint. A pending history disjoint from this union
    /// cannot draw a single cross edge against *any* cached prefix, which
    /// is the gate for the conflict-free merge fast path.
    footprint: DenseBits,
}

impl BaseEdgeCache {
    /// Creates an empty cache (start of a window).
    pub fn new() -> Self {
        BaseEdgeCache {
            txns: Vec::new(),
            pairs: Vec::new(),
            edges_upto: vec![0],
            footprint: DenseBits::new(),
        }
    }

    /// Number of base transactions cached.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Drops all cached state (window rollover).
    pub fn clear(&mut self) {
        self.txns.clear();
        self.pairs.clear();
        self.edges_upto.clear();
        self.edges_upto.push(0);
        self.footprint.clear();
    }

    /// Appends base transactions, computing their conflicts against every
    /// earlier cached transaction.
    pub fn extend(&mut self, arena: &TxnArena, suffix: impl IntoIterator<Item = TxnId>) {
        for id in suffix {
            let j = self.txns.len();
            self.txns.push(id);
            for (i, &earlier) in self.txns[..j].iter().enumerate() {
                if arena.conflicts(earlier, id) {
                    self.pairs.push((i, j));
                }
            }
            self.edges_upto.push(self.pairs.len());
            self.footprint.union_with(arena.read_bits(id));
            self.footprint.union_with(arena.write_bits(id));
        }
    }

    /// Brings the cache up to date with `hb`, which must extend the cached
    /// prefix (the invariant of an epoch's growing base history).
    pub fn sync(&mut self, arena: &TxnArena, hb: &SerialHistory) {
        debug_assert!(
            hb.iter().take(self.txns.len()).eq(self.txns.iter().copied()),
            "base history is not an extension of the cached prefix"
        );
        let known = self.txns.len();
        let suffix: Vec<TxnId> = hb.iter().skip(known).collect();
        self.extend(arena, suffix);
    }

    /// Number of rule-2 edges among the first `prefix` cached transactions.
    pub fn edge_count(&self, prefix: usize) -> usize {
        self.edges_upto[prefix.min(self.txns.len())]
    }

    /// Union of every cached transaction's read∪write footprint. Only
    /// meaningful for the *full* cached length (prefix unions are not
    /// derivable), so fast-path gates must also check
    /// `cache.len() == hb.len()`.
    pub fn footprint_bits(&self) -> &DenseBits {
        &self.footprint
    }

    /// The conflicting pairs among the first `prefix` transactions, in the
    /// `(i asc, j asc)` order the from-scratch build emits them.
    fn pairs_upto(&self, prefix: usize) -> Vec<(usize, usize)> {
        let mut pairs = self.pairs[..self.edge_count(prefix)].to_vec();
        pairs.sort_unstable();
        pairs
    }
}

/// How a [`PrecedenceGraph`] build obtains the rule-2 (base-conflict)
/// edges.
enum Rule2<'a> {
    /// Pairwise comparison over `H_b` (the from-scratch path).
    Compute,
    /// Read them from a [`BaseEdgeCache`] whose prefix matches `H_b`.
    Cached(&'a BaseEdgeCache),
}

/// The precedence graph over the transactions of `H_m ∪ H_b`.
#[derive(Debug, Clone)]
pub struct PrecedenceGraph {
    /// Node order: `H_m` transactions first, then `H_b` transactions.
    nodes: Vec<TxnId>,
    kinds: Vec<TxnKind>,
    /// Adjacency: `succs[i]` holds the node indices `i` points to, sorted
    /// ascending after the build (membership tests binary-search).
    succs: Vec<Vec<usize>>,
    /// Every edge with its reason, for diagnostics and Figure 1 rendering.
    edges: Vec<(TxnId, TxnId, EdgeKind)>,
}

impl PrecedenceGraph {
    /// Builds the graph from a tentative and a base history over one arena.
    ///
    /// Conflicts are determined from static read/write sets: two
    /// transactions conflict on an item if both access it and at least one
    /// writes it.
    pub fn build(arena: &TxnArena, hm: &SerialHistory, hb: &SerialHistory) -> Self {
        Self::build_inner(arena, hm, hb, Rule2::Compute, &mut GraphScratch::new())
    }

    /// Like [`build`](Self::build), but reusing a caller-held
    /// [`GraphScratch`] across builds (e.g. one merge per window step).
    pub fn build_with_scratch(
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        scratch: &mut GraphScratch,
    ) -> Self {
        Self::build_inner(arena, hm, hb, Rule2::Compute, scratch)
    }

    /// Builds the graph like [`build`](Self::build), but takes the rule-2
    /// base-conflict edges from an incrementally maintained
    /// [`BaseEdgeCache`] instead of recomputing the `O(|H_b|²)` pairwise
    /// comparisons. The cache must cover `hb` — i.e. `hb` must equal a
    /// prefix of the cached history.
    ///
    /// The resulting graph is identical to the from-scratch build, edge
    /// order included.
    pub fn build_with_base_cache(
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        cache: &BaseEdgeCache,
    ) -> Self {
        Self::build_with_base_cache_scratch(arena, hm, hb, cache, &mut GraphScratch::new())
    }

    /// [`build_with_base_cache`](Self::build_with_base_cache) with a
    /// caller-held [`GraphScratch`].
    pub fn build_with_base_cache_scratch(
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        cache: &BaseEdgeCache,
        scratch: &mut GraphScratch,
    ) -> Self {
        assert!(cache.len() >= hb.len(), "base-edge cache is behind the base history");
        debug_assert!(
            hb.iter().eq(cache.txns[..hb.len()].iter().copied()),
            "base-edge cache prefix does not match the base history"
        );
        Self::build_inner(arena, hm, hb, Rule2::Cached(cache), scratch)
    }

    fn build_inner(
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        rule2: Rule2,
        scratch: &mut GraphScratch,
    ) -> Self {
        let nodes: Vec<TxnId> = hm.iter().chain(hb.iter()).collect();
        let kinds: Vec<TxnKind> = nodes.iter().map(|id| arena.get(*id).kind()).collect();
        scratch.begin(arena.len());
        for (i, id) in nodes.iter().enumerate() {
            scratch.record(*id, i);
        }
        let index_of = |id: TxnId| scratch.index_of(id);

        let mut graph = PrecedenceGraph {
            succs: vec![Vec::new(); nodes.len()],
            edges: Vec::new(),
            nodes,
            kinds,
        };

        // Rule 1: order of conflicting tentative transactions in H_m.
        // Conflicts are word-wise bitset tests over the arena's interned
        // footprints — identical answers to the VarSet intersections.
        let hm_order: Vec<TxnId> = hm.iter().collect();
        for (i, &ti) in hm_order.iter().enumerate() {
            for &tj in &hm_order[i + 1..] {
                if arena.conflicts(ti, tj) {
                    graph.add_edge(index_of(ti), index_of(tj), EdgeKind::MobileConflict);
                }
            }
        }

        // Rule 2: order of conflicting base transactions in H_b.
        let hb_order: Vec<TxnId> = hb.iter().collect();
        let base_offset = hm_order.len();
        match rule2 {
            Rule2::Compute => {
                for (i, &ti) in hb_order.iter().enumerate() {
                    for &tj in &hb_order[i + 1..] {
                        if arena.conflicts(ti, tj) {
                            graph.add_edge(index_of(ti), index_of(tj), EdgeKind::BaseConflict);
                        }
                    }
                }
            }
            Rule2::Cached(cache) => {
                for (i, j) in cache.pairs_upto(hb_order.len()) {
                    graph.add_edge(base_offset + i, base_offset + j, EdgeKind::BaseConflict);
                }
            }
        }

        // Rule 3: cross edges. Both histories started from the same state,
        // so a tentative read of an item some base transaction wrote must
        // have observed the pre-base value (and vice versa).
        for &tm in &hm_order {
            for &tb in &hb_order {
                if arena.reads_overlap_writes(tm, tb) {
                    graph.add_edge(index_of(tm), index_of(tb), EdgeKind::MobileReadBase);
                }
                if arena.reads_overlap_writes(tb, tm) {
                    graph.add_edge(index_of(tb), index_of(tm), EdgeKind::BaseReadMobile);
                }
            }
        }

        // Sort adjacency ascending (rule-3 targets arrive out of order for
        // base nodes) so membership binary-searches and iteration matches
        // the former BTreeSet order.
        for succs in &mut graph.succs {
            succs.sort_unstable();
        }

        graph
    }

    fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.edges.push((self.nodes[from], self.nodes[to], kind));
        }
    }

    /// The transactions in the graph (tentative first, then base).
    pub fn nodes(&self) -> &[TxnId] {
        &self.nodes
    }

    /// Every edge as `(from, to, kind)`, in insertion order.
    pub fn edges(&self) -> &[(TxnId, TxnId, EdgeKind)] {
        &self.edges
    }

    /// Returns `true` if there is an edge `from → to`.
    pub fn has_edge(&self, from: TxnId, to: TxnId) -> bool {
        match (self.index(from), self.index(to)) {
            (Some(f), Some(t)) => self.succs[f].binary_search(&t).is_ok(),
            _ => false,
        }
    }

    /// The node index of `id`, if present.
    fn index(&self, id: TxnId) -> Option<usize> {
        self.nodes.iter().position(|n| *n == id)
    }

    /// The kind (base/tentative) of a node.
    pub fn kind(&self, id: TxnId) -> Option<TxnKind> {
        self.index(id).map(|i| self.kinds[i])
    }

    /// Returns `true` if the graph is acyclic, ignoring nodes in `removed`.
    ///
    /// By Theorem 1, acyclicity means the two histories are serializable
    /// into one merged history.
    pub fn is_acyclic_without(&self, removed: &BTreeSet<TxnId>) -> bool {
        self.topo_order_without(removed).is_some()
    }

    /// Returns `true` if the full graph is acyclic (Theorem 1).
    pub fn is_acyclic(&self) -> bool {
        self.is_acyclic_without(&BTreeSet::new())
    }

    /// Kahn topological sort over the nodes not in `removed`; `None` if the
    /// remaining graph has a cycle. Ties are broken by preferring **base**
    /// transactions, then lower node index — so merged histories
    /// deterministically front-load the durable base history where the
    /// graph allows, matching the paper's `H = Tb1 Tb2 Tm1 Tm2` in
    /// Example 1.
    fn topo_order_without(&self, removed: &BTreeSet<TxnId>) -> Option<Vec<TxnId>> {
        let n = self.nodes.len();
        let alive: Vec<bool> = self.nodes.iter().map(|id| !removed.contains(id)).collect();
        let mut indegree = vec![0usize; n];
        for (from, succs) in self.succs.iter().enumerate() {
            if !alive[from] {
                continue;
            }
            for &to in succs {
                if alive[to] {
                    indegree[to] += 1;
                }
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut emitted = vec![false; n];
        let alive_count = alive.iter().filter(|a| **a).count();
        loop {
            // Deterministic tie-break: base nodes first, then lowest index.
            let next = (0..n)
                .filter(|&i| alive[i] && !emitted[i] && indegree[i] == 0)
                .min_by_key(|&i| (self.kinds[i] != TxnKind::Base, i));
            let Some(i) = next else { break };
            emitted[i] = true;
            order.push(self.nodes[i]);
            for &to in &self.succs[i] {
                if alive[to] && !emitted[to] {
                    indegree[to] -= 1;
                }
            }
        }
        (order.len() == alive_count).then_some(order)
    }

    /// If the graph (minus `removed`) is acyclic, returns an equivalent
    /// merged serial history over the remaining transactions (Theorem 1).
    pub fn merged_history_without(&self, removed: &BTreeSet<TxnId>) -> Option<SerialHistory> {
        self.topo_order_without(removed).map(SerialHistory::from_order)
    }

    /// If the graph is acyclic, returns an equivalent merged serial history.
    pub fn merged_history(&self) -> Option<SerialHistory> {
        self.merged_history_without(&BTreeSet::new())
    }

    /// The strongly connected components with more than one node, or with a
    /// self-loop — i.e. the components containing cycles. Nodes in
    /// `removed` are ignored.
    pub fn cyclic_sccs(&self, removed: &BTreeSet<TxnId>) -> Vec<Vec<TxnId>> {
        let sccs = self.tarjan_sccs(removed);
        sccs.into_iter()
            .filter(|scc| {
                scc.len() > 1 || {
                    let i = self.index(scc[0]).expect("scc node");
                    self.succs[i].binary_search(&i).is_ok()
                }
            })
            .collect()
    }

    /// All 2-cycles `(a, b)` (edges both ways) among non-removed nodes,
    /// with `a < b` by node order. Davidson's simulations found most
    /// conflicts appear as 2-cycles, motivating the two-cycle-optimal
    /// back-out strategy.
    pub fn two_cycles(&self, removed: &BTreeSet<TxnId>) -> Vec<(TxnId, TxnId)> {
        let mut out = Vec::new();
        for (i, succs) in self.succs.iter().enumerate() {
            if removed.contains(&self.nodes[i]) {
                continue;
            }
            for &j in succs {
                if j > i
                    && !removed.contains(&self.nodes[j])
                    && self.succs[j].binary_search(&i).is_ok()
                {
                    out.push((self.nodes[i], self.nodes[j]));
                }
            }
        }
        out
    }

    /// Tarjan's strongly-connected-components algorithm (iterative), over
    /// nodes not in `removed`.
    fn tarjan_sccs(&self, removed: &BTreeSet<TxnId>) -> Vec<Vec<TxnId>> {
        let n = self.nodes.len();
        let alive: Vec<bool> = self.nodes.iter().map(|id| !removed.contains(id)).collect();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<TxnId>> = Vec::new();

        // Explicit DFS stack: (node, iterator position over succs).
        for start in 0..n {
            if !alive[start] || index[start] != usize::MAX {
                continue;
            }
            let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            let succs_of = |v: usize| -> Vec<usize> {
                self.succs[v].iter().copied().filter(|&w| alive[w]).collect()
            };
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            call_stack.push((start, succs_of(start), 0));

            while let Some((v, succs, pos)) = call_stack.last_mut() {
                if *pos < succs.len() {
                    let w = succs[*pos];
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, succs_of(w), 0));
                    } else if on_stack[w] {
                        let v = *v;
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    let v = *v;
                    call_stack.pop();
                    if let Some((parent, _, _)) = call_stack.last() {
                        lowlink[*parent] = lowlink[*parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            scc.push(self.nodes[w]);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }

    /// Out-degree plus in-degree of a node, counting only edges between
    /// non-removed nodes. Used by greedy back-out strategies.
    pub fn degree_without(&self, id: TxnId, removed: &BTreeSet<TxnId>) -> usize {
        let Some(i) = self.index(id) else { return 0 };
        if removed.contains(&id) {
            return 0;
        }
        let out = self.succs[i].iter().filter(|&&j| !removed.contains(&self.nodes[j])).count();
        let inn = self
            .succs
            .iter()
            .enumerate()
            .filter(|(j, succs)| {
                !removed.contains(&self.nodes[*j]) && succs.binary_search(&i).is_ok()
            })
            .count();
        out + inn
    }
}

impl fmt::Display for PrecedenceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "precedence graph: {} nodes, {} edges", self.nodes.len(), self.edges.len())?;
        for (from, to, kind) in &self.edges {
            writeln!(f, "  {from} -> {to}  [{kind}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, VarId, VarSet};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn rw_txn(
        arena: &mut TxnArena,
        name: &str,
        kind: TxnKind,
        reads: &[u32],
        writes: &[u32],
    ) -> TxnId {
        let mut b = ProgramBuilder::new(name);
        let read_set: VarSet = reads.iter().chain(writes.iter()).map(|i| v(*i)).collect();
        for var in read_set.iter() {
            b = b.read(var);
        }
        for w in writes {
            b = b.update(v(*w), Expr::var(v(*w)) + Expr::konst(1));
        }
        let prog: Arc<Program> = Arc::new(b.build().unwrap());
        arena.alloc(|id| Transaction::new(id, name, kind, prog, vec![]))
    }

    #[test]
    fn example1_edges_match_figure1() {
        let ex = crate::fixtures::example1();
        let ([m1, m2, m3, m4], [b1, b2]) = (ex.m, ex.b);
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        // Rule 1 edges within H_m.
        assert!(g.has_edge(m1, m2)); // d2
        assert!(g.has_edge(m2, m3)); // d4, d5, d6
        assert!(g.has_edge(m2, m4)); // d6
        assert!(g.has_edge(m3, m4)); // d6
        assert!(!g.has_edge(m1, m3)); // disjoint footprints
                                      // Rule 2 edge within H_b (both touch d5, Tb1 writes).
        assert!(g.has_edge(b1, b2));
        // Rule 3 cross edges.
        assert!(g.has_edge(b2, m1)); // Tb2 read d1, updated by Tm1
        assert!(g.has_edge(b1, m2)); // Tb1 read d5, updated by Tm2
        assert!(g.has_edge(b2, m2)); // Tb2 read d5, updated by Tm2
        assert!(g.has_edge(m3, b1)); // Tm3 read d5, updated by Tb1
        assert!(!g.has_edge(m2, b1)); // Tm2 never reads d5 (blind write)
                                      // No edge in the reverse tentative order.
        assert!(!g.has_edge(m2, m1));
        assert!(!g.has_edge(m4, m3));
    }

    #[test]
    fn example1_cycle_broken_by_tm3() {
        let ex = crate::fixtures::example1();
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        // "Since the graph has a cycle, conflict exists among the
        // transactions": Tm3 -> Tb1 -> Tm2 -> Tm3.
        assert!(!g.is_acyclic());
        // "after Tm3 and Tm4 are backed out, ... the reconstructed
        // precedence graph is acyclic" — indeed Tm3 alone suffices for
        // acyclicity; Tm4 is backed out as an *affected* transaction.
        let removed: BTreeSet<TxnId> = [ex.m[2]].into_iter().collect();
        assert!(g.is_acyclic_without(&removed));
    }

    #[test]
    fn example1_merged_history_matches_paper() {
        let ex = crate::fixtures::example1();
        let ([m1, m2, m3, m4], [b1, b2]) = (ex.m, ex.b);
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        // Back out B ∪ AG = {Tm3, Tm4}: the merged history is
        // H = Tb1 Tb2 Tm1 Tm2, as stated in Example 1.
        let removed: BTreeSet<TxnId> = [m3, m4].into_iter().collect();
        let merged = g.merged_history_without(&removed).unwrap();
        assert_eq!(merged.order(), &[b1, b2, m1, m2]);
    }

    #[test]
    fn two_cycles_detected() {
        let mut arena = TxnArena::new();
        let m = rw_txn(&mut arena, "m", TxnKind::Tentative, &[0], &[0]);
        let b = rw_txn(&mut arena, "b", TxnKind::Base, &[0], &[0]);
        let g = PrecedenceGraph::build(
            &arena,
            &SerialHistory::from_order([m]),
            &SerialHistory::from_order([b]),
        );
        assert_eq!(g.two_cycles(&BTreeSet::new()), vec![(m, b)]);
        assert_eq!(g.cyclic_sccs(&BTreeSet::new()).len(), 1);
        let removed: BTreeSet<TxnId> = [m].into_iter().collect();
        assert!(g.two_cycles(&removed).is_empty());
        assert!(g.is_acyclic_without(&removed));
    }

    #[test]
    fn disjoint_histories_are_acyclic() {
        let mut arena = TxnArena::new();
        let m = rw_txn(&mut arena, "m", TxnKind::Tentative, &[0], &[0]);
        let b = rw_txn(&mut arena, "b", TxnKind::Base, &[1], &[1]);
        let g = PrecedenceGraph::build(
            &arena,
            &SerialHistory::from_order([m]),
            &SerialHistory::from_order([b]),
        );
        assert!(g.is_acyclic());
        assert!(g.edges().is_empty());
        let merged = g.merged_history().unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.order()[0], b, "base preferred in ties");
    }

    #[test]
    fn read_only_cross_edges_are_one_way() {
        let mut arena = TxnArena::new();
        // Tentative reads d0; base writes d0. Only Tm -> Tb.
        let m = rw_txn(&mut arena, "m", TxnKind::Tentative, &[0], &[]);
        let b = rw_txn(&mut arena, "b", TxnKind::Base, &[0], &[0]);
        let g = PrecedenceGraph::build(
            &arena,
            &SerialHistory::from_order([m]),
            &SerialHistory::from_order([b]),
        );
        assert!(g.has_edge(m, b));
        assert!(!g.has_edge(b, m));
        assert!(g.is_acyclic());
        assert_eq!(g.edges()[0].2, EdgeKind::MobileReadBase);
        assert_eq!(g.kind(m), Some(TxnKind::Tentative));
    }

    #[test]
    fn degree_counts_both_directions() {
        let ex = crate::fixtures::example1();
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        let none = BTreeSet::new();
        // Tm2: out to Tm3, Tm4; in from Tm1, Tb1, Tb2.
        assert_eq!(g.degree_without(ex.m[1], &none), 5);
        let all: BTreeSet<TxnId> = g.nodes().iter().copied().collect();
        assert_eq!(g.degree_without(ex.m[1], &all), 0);
    }

    #[test]
    fn display_lists_edges() {
        let ex = crate::fixtures::example1();
        let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        let text = g.to_string();
        assert!(text.contains("nodes"));
        assert!(text.contains("mobile-read-base"));
    }

    #[test]
    fn cached_build_matches_from_scratch() {
        let ex = crate::fixtures::example1();
        let mut cache = BaseEdgeCache::new();
        cache.sync(&ex.arena, &ex.hb);
        assert_eq!(cache.len(), ex.hb.len());
        let scratch = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
        let cached = PrecedenceGraph::build_with_base_cache(&ex.arena, &ex.hm, &ex.hb, &cache);
        assert_eq!(scratch.nodes(), cached.nodes());
        assert_eq!(scratch.edges(), cached.edges());
        assert_eq!(cache.edge_count(ex.hb.len()), 1); // Tb1 -> Tb2 on d5
        assert_eq!(cache.edge_count(0), 0);
    }

    #[test]
    fn cache_grows_incrementally_and_serves_prefixes() {
        let mut arena = TxnArena::new();
        let ids: Vec<TxnId> = (0..6)
            .map(|i| rw_txn(&mut arena, &format!("b{i}"), TxnKind::Base, &[i % 2], &[i % 2]))
            .collect();
        let m = rw_txn(&mut arena, "m", TxnKind::Tentative, &[0], &[0]);
        let hm = SerialHistory::from_order([m]);

        let mut cache = BaseEdgeCache::new();
        // Grow the epoch two transactions at a time; each prefix must match
        // the from-scratch build exactly, including edge order, and earlier
        // prefixes must keep working after later extensions.
        for step in [2usize, 4, 6] {
            let hb = SerialHistory::from_order(ids[..step].iter().copied());
            cache.sync(&arena, &hb);
            for prefix in (2..=step).step_by(2) {
                let hb_pre = SerialHistory::from_order(ids[..prefix].iter().copied());
                let scratch = PrecedenceGraph::build(&arena, &hm, &hb_pre);
                let cached = PrecedenceGraph::build_with_base_cache(&arena, &hm, &hb_pre, &cache);
                assert_eq!(scratch.edges(), cached.edges(), "prefix {prefix} of {step}");
                assert_eq!(
                    cache.edge_count(prefix),
                    scratch.edges().iter().filter(|(_, _, k)| *k == EdgeKind::BaseConflict).count()
                );
            }
        }
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.edge_count(6), 0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_builds() {
        let ex = crate::fixtures::example1();
        let mut cache = BaseEdgeCache::new();
        cache.sync(&ex.arena, &ex.hb);
        let mut scratch = GraphScratch::new();
        // Reuse one scratch across from-scratch, cached, and shrunk builds;
        // every graph must match its fresh-scratch twin edge-for-edge.
        for _ in 0..3 {
            let fresh = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
            let reused =
                PrecedenceGraph::build_with_scratch(&ex.arena, &ex.hm, &ex.hb, &mut scratch);
            assert_eq!(fresh.edges(), reused.edges());
            assert_eq!(fresh.nodes(), reused.nodes());
            let cached = PrecedenceGraph::build_with_base_cache_scratch(
                &ex.arena,
                &ex.hm,
                &ex.hb,
                &cache,
                &mut scratch,
            );
            assert_eq!(fresh.edges(), cached.edges());
            // A smaller build right after must not see stale entries.
            let small = PrecedenceGraph::build_with_scratch(
                &ex.arena,
                &SerialHistory::from_order([ex.m[0]]),
                &SerialHistory::new(),
                &mut scratch,
            );
            assert!(small.edges().is_empty());
            assert_eq!(small.nodes(), &[ex.m[0]]);
        }
    }

    #[test]
    #[should_panic(expected = "behind the base history")]
    fn stale_cache_is_rejected() {
        let ex = crate::fixtures::example1();
        let cache = BaseEdgeCache::new();
        let _ = PrecedenceGraph::build_with_base_cache(&ex.arena, &ex.hm, &ex.hb, &cache);
    }

    #[test]
    fn self_history_conflicts_only_forward() {
        // Within one history the graph restricted to it is always acyclic
        // (edges follow the serial order).
        let mut arena = TxnArena::new();
        let a = rw_txn(&mut arena, "a", TxnKind::Tentative, &[0], &[0]);
        let b = rw_txn(&mut arena, "b", TxnKind::Tentative, &[0], &[0]);
        let c = rw_txn(&mut arena, "c", TxnKind::Tentative, &[0], &[0]);
        let g = PrecedenceGraph::build(
            &arena,
            &SerialHistory::from_order([a, b, c]),
            &SerialHistory::new(),
        );
        assert!(g.is_acyclic());
        assert_eq!(g.merged_history().unwrap().order(), &[a, b, c]);
    }
}
