//! Transaction model substrate for `histmerge`.
//!
//! This crate implements the transaction language assumed by the paper
//! *"Incorporating Transaction Semantics to Reduce Reprocessing Overhead in
//! Replicated Mobile Data Applications"* (Liu, Ammann, Jajodia, ICDCS 1999),
//! Section 3:
//!
//! * a transaction is a sequence of statements;
//! * each statement is either a read, an update of the form
//!   `x := f(x, y1, ..., yn)`, or a conditional `if c then SS1 else SS2`;
//! * each statement updates at most one data item;
//! * each data item is updated at most once per transaction;
//! * transactions issue **no blind writes**: every written item is also read.
//!
//! The crate provides:
//!
//! * [`VarId`], [`Value`], [`DbState`] — named integer-valued data items and
//!   database states;
//! * [`Expr`] / [`Pred`] — side-effect-free arithmetic and boolean
//!   expressions over data items, transaction parameters and constants;
//! * [`Statement`] / [`Program`] — the statement AST and a validated program
//!   with statically computed read and write sets;
//! * [`exec`] — an interpreter that executes programs against a state,
//!   honouring a *fix* (Definition 1 of the paper: a set of pinned read
//!   values) and recording the observed reads plus before/after images;
//! * [`Transaction`] / [`registry`] — instantiated transactions and a canned
//!   transaction-type registry with declared inverse (compensating)
//!   programs.
//!
//! # Example
//!
//! ```rust
//! use histmerge_txn::{DbState, Fix, ProgramBuilder, Expr, VarId};
//!
//! # fn main() -> Result<(), histmerge_txn::TxnError> {
//! // B1: if x > 0 then y := y + z + 3      (from Section 3 of the paper)
//! let (x, y, z) = (VarId::new(0), VarId::new(1), VarId::new(2));
//! let prog = ProgramBuilder::new("b1")
//!     .read(x).read(y).read(z)
//!     .branch(
//!         Expr::var(x).gt(Expr::konst(0)),
//!         |t| t.update(y, Expr::var(y) + Expr::var(z) + Expr::konst(3)),
//!         |t| t,
//!     )
//!     .build()?;
//!
//! let mut s0 = DbState::new();
//! s0.set(x, 1); s0.set(y, 7); s0.set(z, 2);
//! let out = prog.execute(&[], &s0, &Fix::empty())?;
//! assert_eq!(out.after.get(y), 12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod fix;
mod program;
mod state;
mod transaction;
mod value;

pub mod exec;
pub mod registry;

pub use error::TxnError;
pub use expr::{Expr, Pred};
pub use fix::Fix;
pub use program::{Program, ProgramBuilder, Statement};
pub use state::{DbState, OverlayState, StateRead};
pub use transaction::{Transaction, TxnId, TxnKind};
pub use value::{Value, VarId, VarMask, VarSet};
