//! Instantiated transactions.

use std::fmt;
use std::sync::Arc;

use crate::error::TxnError;
use crate::exec::{self, ExecDelta, ExecOutcome};
use crate::fix::Fix;
use crate::program::Program;
use crate::registry::TxnTypeId;
use crate::state::{DbState, StateRead};
use crate::value::{Value, VarMask, VarSet};

/// Identifier of a transaction within a history arena.
///
/// Identifiers are dense indices assigned by the owning arena (see the
/// `histmerge-history` crate), which keeps per-transaction bookkeeping in
/// plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(u32);

impl TxnId {
    /// Creates a transaction identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        TxnId(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Whether a transaction executed on a mobile node (tentative) or a base
/// node (base).
///
/// Base transactions are durable and can never be backed out (Section 2.1,
/// step 2: "only tentative transactions can be put into B").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Executed on a base node against master data; durable.
    Base,
    /// Executed on a mobile node against tentative data; may be backed out.
    Tentative,
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnKind::Base => f.write_str("base"),
            TxnKind::Tentative => f.write_str("tentative"),
        }
    }
}

/// A transaction instance: a program plus bound input parameters, identity,
/// and optional semantic metadata.
///
/// `Transaction` is cheaply cloneable (programs are shared via [`Arc`]).
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{DbState, Expr, Fix, ProgramBuilder, Transaction, TxnId, TxnKind, VarId};
///
/// # fn main() -> Result<(), histmerge_txn::TxnError> {
/// let x = VarId::new(0);
/// let prog = ProgramBuilder::new("deposit")
///     .read(x)
///     .update(x, Expr::var(x) + Expr::param(0))
///     .build()?;
/// let t = Transaction::new(TxnId::new(0), "Tm1", TxnKind::Tentative, prog.into(), vec![100]);
/// let s: DbState = [(x, 5)].into_iter().collect();
/// let out = t.execute(&s, &Fix::empty())?;
/// assert_eq!(out.after.get(x), 105);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Transaction {
    id: TxnId,
    name: String,
    kind: TxnKind,
    program: Arc<Program>,
    params: Vec<Value>,
    inverse: Option<Arc<Program>>,
    type_id: Option<TxnTypeId>,
    precondition: Option<crate::expr::Pred>,
}

impl Transaction {
    /// Creates a transaction instance.
    pub fn new(
        id: TxnId,
        name: impl Into<String>,
        kind: TxnKind,
        program: Arc<Program>,
        params: Vec<Value>,
    ) -> Self {
        Transaction {
            id,
            name: name.into(),
            kind,
            program,
            params,
            inverse: None,
            type_id: None,
            precondition: None,
        }
    }

    /// Declares the transaction's *precondition*: the predicate that must
    /// hold on the state it executes against for the execution to count as
    /// a success. Guarded programs degrade to no-ops when their guard
    /// fails; the precondition is how a re-execution of a backed-out
    /// transaction is classified as **failed** and "informed to the users
    /// together with the corresponding reasons" (protocol step 6).
    ///
    /// Precondition variables must be in the program's read set.
    #[must_use]
    pub fn with_precondition(mut self, precondition: crate::expr::Pred) -> Self {
        self.precondition = Some(precondition);
        self
    }

    /// The declared precondition, if any.
    pub fn precondition(&self) -> Option<&crate::expr::Pred> {
        self.precondition.as_ref()
    }

    /// Evaluates the precondition against `state` (honouring `fix`).
    /// Transactions without a precondition always pass.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::MissingVariable`] if the state lacks a
    /// precondition variable.
    pub fn check_precondition(
        &self,
        state: &DbState,
        fix: &crate::fix::Fix,
    ) -> Result<bool, TxnError> {
        self.check_precondition_on(state, fix)
    }

    /// [`Transaction::check_precondition`] against any [`StateRead`] view
    /// (e.g. a copy-on-write [`OverlayState`](crate::OverlayState)).
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::MissingVariable`] if the view lacks a
    /// precondition variable.
    pub fn check_precondition_on(
        &self,
        state: &dyn StateRead,
        fix: &crate::fix::Fix,
    ) -> Result<bool, TxnError> {
        match &self.precondition {
            None => Ok(true),
            Some(pred) => {
                let mut lookup = |var| {
                    fix.get(var)
                        .or_else(|| state.read(var))
                        .ok_or(TxnError::MissingVariable { var })
                };
                pred.eval_with(&mut lookup, &self.params)
            }
        }
    }

    /// Attaches a compensating (inverse) program. The inverse is executed
    /// with the same parameters as the forward program.
    #[must_use]
    pub fn with_inverse(mut self, inverse: Arc<Program>) -> Self {
        self.inverse = Some(inverse);
        self
    }

    /// Tags the transaction with its canned type (Section 5.1: in canned
    /// systems, semantic relations between transaction *types* are
    /// pre-detected offline).
    #[must_use]
    pub fn with_type(mut self, type_id: TxnTypeId) -> Self {
        self.type_id = Some(type_id);
        self
    }

    /// The transaction's identity within its arena.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Re-identifies the transaction (used when copying a transaction into
    /// a different arena, e.g. when a backed-out tentative transaction is
    /// re-submitted as a base transaction).
    #[must_use]
    pub fn with_id(mut self, id: TxnId) -> Self {
        self.id = id;
        self
    }

    /// Re-labels the transaction kind (tentative → base on re-submission).
    #[must_use]
    pub fn with_kind(mut self, kind: TxnKind) -> Self {
        self.kind = kind;
        self
    }

    /// Human-readable name (e.g. `Tm1`, `Tb2`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a base or tentative transaction.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// The underlying program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The bound input parameters.
    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// The compensating program, if one was declared.
    pub fn inverse(&self) -> Option<&Arc<Program>> {
        self.inverse.as_ref()
    }

    /// The canned transaction type, if declared.
    pub fn type_id(&self) -> Option<TxnTypeId> {
        self.type_id
    }

    /// Static read set (delegates to the program).
    pub fn readset(&self) -> &VarSet {
        self.program.readset()
    }

    /// Static write set (delegates to the program).
    pub fn writeset(&self) -> &VarSet {
        self.program.writeset()
    }

    /// Static footprint `readset ∪ writeset` (delegates to the program).
    pub fn footprint(&self) -> &VarSet {
        self.program.footprint()
    }

    /// Overlap-test mask of the static read set (delegates to the program).
    pub fn read_mask(&self) -> &VarMask {
        self.program.read_mask()
    }

    /// Overlap-test mask of the static write set (delegates to the
    /// program).
    pub fn write_mask(&self) -> &VarMask {
        self.program.write_mask()
    }

    /// `readset − writeset`: the items read but never written. Lemma 2
    /// shows this set (with original read values) is always a sufficient
    /// fix.
    pub fn read_only_set(&self) -> VarSet {
        self.readset().difference(self.writeset())
    }

    /// Executes the forward program on `state` with `fix`.
    ///
    /// # Errors
    ///
    /// See [`Program::execute`].
    pub fn execute(&self, state: &DbState, fix: &Fix) -> Result<ExecOutcome, TxnError> {
        self.program.execute(&self.params, state, fix)
    }

    /// Executes the forward program against any [`StateRead`] view,
    /// returning the write delta instead of a materialized after state
    /// (the copy-on-write execution path; see [`exec::execute_view`]).
    ///
    /// # Errors
    ///
    /// See [`Program::execute`].
    pub fn execute_delta(&self, state: &dyn StateRead, fix: &Fix) -> Result<ExecDelta, TxnError> {
        exec::execute_view(&self.program, &self.params, state, fix)
    }

    /// Executes the compensating program against any [`StateRead`] view,
    /// returning the write delta (the copy-on-write analogue of
    /// [`Transaction::compensate`]).
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::UnknownTxnType`] if no inverse was declared,
    /// otherwise see [`Program::execute`].
    pub fn compensate_delta(
        &self,
        state: &dyn StateRead,
        fix: &Fix,
    ) -> Result<ExecDelta, TxnError> {
        let inverse = self.inverse.as_ref().ok_or_else(|| TxnError::UnknownTxnType {
            name: format!("{} (no compensating program)", self.name),
        })?;
        exec::execute_view(inverse, &self.params, state, fix)
    }

    /// Executes the compensating program on `state` with `fix` (the *fixed
    /// compensating transaction* `T^(-1,F)` of Definition 5).
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::UnknownTxnType`] if no inverse was declared,
    /// otherwise see [`Program::execute`].
    pub fn compensate(&self, state: &DbState, fix: &Fix) -> Result<ExecOutcome, TxnError> {
        let inverse = self.inverse.as_ref().ok_or_else(|| TxnError::UnknownTxnType {
            name: format!("{} (no compensating program)", self.name),
        })?;
        inverse.execute(&self.params, state, fix)
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::value::VarId;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn deposit() -> Arc<Program> {
        Arc::new(
            ProgramBuilder::new("deposit")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::param(0))
                .build()
                .unwrap(),
        )
    }

    fn withdraw() -> Arc<Program> {
        Arc::new(
            ProgramBuilder::new("withdraw")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) - Expr::param(0))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn execute_with_params() {
        let t = Transaction::new(TxnId::new(0), "Tm1", TxnKind::Tentative, deposit(), vec![25]);
        let s: DbState = [(v(0), 100)].into_iter().collect();
        let out = t.execute(&s, &Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 125);
        assert_eq!(t.kind(), TxnKind::Tentative);
        assert_eq!(t.name(), "Tm1");
        assert_eq!(t.params(), &[25]);
    }

    #[test]
    fn compensate_inverts() {
        let t = Transaction::new(TxnId::new(1), "T", TxnKind::Tentative, deposit(), vec![25])
            .with_inverse(withdraw());
        let s: DbState = [(v(0), 100)].into_iter().collect();
        let fwd = t.execute(&s, &Fix::empty()).unwrap();
        let back = t.compensate(&fwd.after, &Fix::empty()).unwrap();
        assert_eq!(back.after, s);
    }

    #[test]
    fn compensate_without_inverse_errors() {
        let t = Transaction::new(TxnId::new(1), "T", TxnKind::Tentative, deposit(), vec![25]);
        let s: DbState = [(v(0), 100)].into_iter().collect();
        assert!(t.compensate(&s, &Fix::empty()).is_err());
    }

    #[test]
    fn read_only_set() {
        let p = Arc::new(
            ProgramBuilder::new("t")
                .read(v(0))
                .read(v(1))
                .update(v(0), Expr::var(v(0)) + Expr::var(v(1)))
                .build()
                .unwrap(),
        );
        let t = Transaction::new(TxnId::new(0), "T", TxnKind::Base, p, vec![]);
        assert_eq!(t.read_only_set(), [v(1)].into_iter().collect());
    }

    #[test]
    fn precondition_classifies_success() {
        use crate::expr::Expr;
        // withdraw(40) with the precondition bal >= 40.
        let t = Transaction::new(TxnId::new(0), "wd", TxnKind::Tentative, withdraw(), vec![40])
            .with_precondition(Expr::var(v(0)).ge(Expr::param(0)));
        let rich: DbState = [(v(0), 100)].into_iter().collect();
        assert!(t.check_precondition(&rich, &Fix::empty()).unwrap());
        let poor: DbState = [(v(0), 10)].into_iter().collect();
        assert!(!t.check_precondition(&poor, &Fix::empty()).unwrap());
        // A fix pinning the balance overrides the state.
        let fix: Fix = [(v(0), 100)].into_iter().collect();
        assert!(t.check_precondition(&poor, &fix).unwrap());
        assert!(t.precondition().is_some());
        // No precondition: always passes.
        let free = Transaction::new(TxnId::new(1), "d", TxnKind::Tentative, deposit(), vec![1]);
        assert!(free.check_precondition(&poor, &Fix::empty()).unwrap());
        assert!(free.precondition().is_none());
        // Missing variable reported.
        let empty = DbState::new();
        assert!(t.check_precondition(&empty, &Fix::empty()).is_err());
    }

    #[test]
    fn rebranding_helpers() {
        let t = Transaction::new(TxnId::new(3), "T", TxnKind::Tentative, deposit(), vec![1]);
        let t2 = t.clone().with_id(TxnId::new(9)).with_kind(TxnKind::Base);
        assert_eq!(t2.id(), TxnId::new(9));
        assert_eq!(t2.kind(), TxnKind::Base);
        assert_eq!(t.id(), TxnId::new(3));
    }

    #[test]
    fn display() {
        let t = Transaction::new(TxnId::new(3), "Tm3", TxnKind::Tentative, deposit(), vec![1]);
        assert_eq!(t.to_string(), "Tm3(T3)");
        assert_eq!(TxnId::new(7).to_string(), "T7");
        assert_eq!(TxnKind::Base.to_string(), "base");
    }
}
