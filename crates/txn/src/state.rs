//! Database states.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::{Value, VarId, VarSet};

/// A database state: a total assignment of values to a finite set of data
/// items.
///
/// Augmented histories (Section 3 of the paper) interleave transactions with
/// explicit states `s0 T1 s1 T2 s2 ...`; `DbState` is the representation of
/// those states. Backed by a [`BTreeMap`] for deterministic iteration.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{DbState, VarId};
///
/// let x = VarId::new(0);
/// let mut s = DbState::new();
/// s.set(x, 41);
/// s.set(x, s.get(x) + 1);
/// assert_eq!(s.get(x), 42);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbState {
    items: BTreeMap<VarId, Value>,
}

impl DbState {
    /// Creates an empty state (no data items).
    pub fn new() -> Self {
        DbState { items: BTreeMap::new() }
    }

    /// Creates a state where variables `d0..d{n-1}` all hold `value`.
    pub fn uniform(n_vars: u32, value: Value) -> Self {
        DbState { items: (0..n_vars).map(|i| (VarId::new(i), value)).collect() }
    }

    /// Returns the value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not present; use [`DbState::try_get`] for a
    /// fallible lookup. States in this workspace are total over the workload
    /// variable space, so absence indicates a harness bug.
    pub fn get(&self, var: VarId) -> Value {
        match self.items.get(&var) {
            Some(v) => *v,
            None => panic!("variable {var} missing from database state"),
        }
    }

    /// Returns the value of `var`, or `None` if it is not present.
    pub fn try_get(&self, var: VarId) -> Option<Value> {
        self.items.get(&var).copied()
    }

    /// Sets the value of `var`, inserting it if absent. Returns the previous
    /// value if there was one.
    pub fn set(&mut self, var: VarId, value: Value) -> Option<Value> {
        self.items.insert(var, value)
    }

    /// Returns `true` if `var` is present.
    pub fn contains(&self, var: VarId) -> bool {
        self.items.contains_key(&var)
    }

    /// Number of data items in the state.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the state holds no data items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(variable, value)` pairs in ascending variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.items.iter().map(|(k, v)| (*k, *v))
    }

    /// The set of variables present in the state.
    pub fn vars(&self) -> VarSet {
        self.items.keys().copied().collect()
    }

    /// Returns the restriction of this state to `vars`.
    ///
    /// Used when forwarding updates: protocol step 5 forwards, for each item
    /// modified by the repaired history, only its value in the final state.
    pub fn project(&self, vars: &VarSet) -> DbState {
        DbState { items: vars.iter().filter_map(|v| self.try_get(v).map(|val| (v, val))).collect() }
    }

    /// Overwrites the items present in `patch` with the patch's values,
    /// leaving other items untouched.
    pub fn apply(&mut self, patch: &DbState) {
        for (var, val) in patch.iter() {
            self.items.insert(var, val);
        }
    }

    /// Returns the set of variables on which `self` and `other` disagree
    /// (including variables present in only one of the two states).
    pub fn diff_vars(&self, other: &DbState) -> VarSet {
        let mut out = VarSet::new();
        for (var, val) in self.iter() {
            if other.try_get(var) != Some(val) {
                out.insert(var);
            }
        }
        for (var, _) in other.iter() {
            if !self.contains(var) {
                out.insert(var);
            }
        }
        out
    }

    /// Returns `true` if both states assign the same value to every variable
    /// in `vars`.
    pub fn agrees_on(&self, other: &DbState, vars: &VarSet) -> bool {
        vars.iter().all(|v| self.try_get(v) == other.try_get(v))
    }
}

impl FromIterator<(VarId, Value)> for DbState {
    fn from_iter<I: IntoIterator<Item = (VarId, Value)>>(iter: I) -> Self {
        DbState { items: iter.into_iter().collect() }
    }
}

/// Read access to a database state, without committing to a representation.
///
/// The interpreter only ever *reads* the state it executes against; the
/// writes come back as a delta. Abstracting the read side lets history
/// execution run against a copy-on-write [`OverlayState`] — one base state
/// plus the accumulated writes — instead of cloning a full [`DbState`]
/// per transaction.
pub trait StateRead {
    /// Returns the value of `var`, or `None` if it is not present.
    fn read(&self, var: VarId) -> Option<Value>;
}

impl StateRead for DbState {
    fn read(&self, var: VarId) -> Option<Value> {
        self.try_get(var)
    }
}

/// A copy-on-write view: a borrowed base state plus an overlay of writes.
///
/// Reads consult the overlay first and fall back to the base; writes land
/// in the overlay only. Executing an `n`-transaction history through one
/// overlay costs O(items touched), where the naive
/// clone-per-step execution costs O(n · |database|).
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{DbState, OverlayState, StateRead, VarId};
///
/// let x = VarId::new(0);
/// let base: DbState = [(x, 1)].into_iter().collect();
/// let mut view = OverlayState::new(&base);
/// assert_eq!(view.read(x), Some(1));
/// view.set(x, 42);
/// assert_eq!(view.read(x), Some(42));
/// assert_eq!(base.get(x), 1); // base untouched
/// assert_eq!(view.materialize().get(x), 42);
/// ```
#[derive(Debug, Clone)]
pub struct OverlayState<'a> {
    base: &'a DbState,
    overlay: BTreeMap<VarId, Value>,
}

impl<'a> OverlayState<'a> {
    /// Creates a view over `base` with an empty overlay.
    pub fn new(base: &'a DbState) -> Self {
        OverlayState { base, overlay: BTreeMap::new() }
    }

    /// Writes `value` to `var` in the overlay.
    pub fn set(&mut self, var: VarId, value: Value) {
        self.overlay.insert(var, value);
    }

    /// Applies a write delta (e.g. [`ExecDelta::writes`](crate::exec::ExecDelta))
    /// to the overlay.
    pub fn apply_writes(&mut self, writes: &BTreeMap<VarId, Value>) {
        for (var, value) in writes {
            self.overlay.insert(*var, *value);
        }
    }

    /// Number of overlaid (written) items.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// The restriction of the current view to `vars` (the overlay-aware
    /// analogue of [`DbState::project`]).
    pub fn project(&self, vars: &VarSet) -> DbState {
        vars.iter().filter_map(|v| self.read(v).map(|val| (v, val))).collect()
    }

    /// Materializes the view into an owned state: a clone of the base with
    /// the overlay applied. One full-state copy for the entire history,
    /// instead of one per step.
    pub fn materialize(&self) -> DbState {
        let mut state = self.base.clone();
        for (var, value) in &self.overlay {
            state.set(*var, *value);
        }
        state
    }
}

impl StateRead for OverlayState<'_> {
    fn read(&self, var: VarId) -> Option<Value> {
        self.overlay.get(&var).copied().or_else(|| self.base.try_get(var))
    }
}

impl fmt::Display for DbState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, val)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{var}={val}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = DbState::new();
        assert!(s.is_empty());
        assert_eq!(s.set(v(0), 10), None);
        assert_eq!(s.set(v(0), 20), Some(10));
        assert_eq!(s.get(v(0)), 20);
        assert_eq!(s.try_get(v(1)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "missing from database state")]
    fn get_missing_panics() {
        DbState::new().get(v(9));
    }

    #[test]
    fn uniform_state() {
        let s = DbState::uniform(3, 7);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(v(2)), 7);
        assert_eq!(s.vars().len(), 3);
    }

    #[test]
    fn project_and_apply() {
        let mut s = DbState::uniform(4, 0);
        s.set(v(1), 5);
        s.set(v(2), 6);
        let keep: VarSet = [v(1), v(3)].into_iter().collect();
        let p = s.project(&keep);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(v(1)), 5);
        assert_eq!(p.get(v(3)), 0);

        let mut t = DbState::uniform(4, -1);
        t.apply(&p);
        assert_eq!(t.get(v(1)), 5);
        assert_eq!(t.get(v(0)), -1);
    }

    #[test]
    fn diff_and_agrees() {
        let a = DbState::uniform(3, 1);
        let mut b = DbState::uniform(3, 1);
        assert!(a.diff_vars(&b).is_empty());
        b.set(v(2), 9);
        assert_eq!(a.diff_vars(&b), [v(2)].into_iter().collect());
        let on: VarSet = [v(0), v(1)].into_iter().collect();
        assert!(a.agrees_on(&b, &on));
        let on2: VarSet = [v(2)].into_iter().collect();
        assert!(!a.agrees_on(&b, &on2));
        // asymmetric presence counts as a difference
        let mut c = DbState::uniform(2, 1);
        c.set(v(5), 4);
        assert!(a.diff_vars(&c).contains(v(5)));
        assert!(a.diff_vars(&c).contains(v(2)));
    }

    #[test]
    fn display_is_sorted() {
        let mut s = DbState::new();
        s.set(v(1), 2);
        s.set(v(0), 1);
        assert_eq!(s.to_string(), "{d0=1; d1=2}");
    }

    #[test]
    fn overlay_reads_through_and_materializes() {
        let base = DbState::uniform(3, 10);
        let mut view = OverlayState::new(&base);
        assert_eq!(view.read(v(1)), Some(10));
        assert_eq!(view.read(v(9)), None);
        view.set(v(1), 99);
        view.apply_writes(&[(v(2), 50)].into_iter().collect());
        assert_eq!(view.read(v(1)), Some(99));
        assert_eq!(view.read(v(0)), Some(10));
        assert_eq!(view.overlay_len(), 2);
        let vars: VarSet = [v(0), v(1), v(7)].into_iter().collect();
        let proj = view.project(&vars);
        assert_eq!(proj.try_get(v(1)), Some(99));
        assert_eq!(proj.try_get(v(0)), Some(10));
        assert!(!proj.contains(v(7)));
        let full = view.materialize();
        assert_eq!(full.get(v(1)), 99);
        assert_eq!(full.get(v(2)), 50);
        assert_eq!(base.get(v(1)), 10);
    }
}
