//! The transaction interpreter.
//!
//! Executes a [`Program`] against a database state with an
//! optional [`Fix`], producing the after state plus an observation record:
//! which items were actually read and written (on the taken path), the
//! values involved, and before/after images for the logging that the undo
//! approach of Section 6.2 depends on.

use std::collections::BTreeMap;

use crate::error::TxnError;
use crate::fix::Fix;
use crate::program::{Program, Statement};
use crate::state::{DbState, StateRead};
use crate::value::{Value, VarId, VarSet};

/// The result of executing a program once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The database state after the transaction committed.
    pub after: DbState,
    /// The values the transaction observed for each item it read, in the
    /// position it executed (fix values for pinned items). This is exactly
    /// the information a fix records (Definition 1).
    pub reads: BTreeMap<VarId, Value>,
    /// The values the transaction wrote.
    pub writes: BTreeMap<VarId, Value>,
    /// Items actually read on the taken path (⊆ static read set).
    pub observed_readset: VarSet,
    /// Items actually written on the taken path (⊆ static write set).
    pub observed_writeset: VarSet,
    /// Before image over the program's static read ∪ write set, straight
    /// from the before state. Algorithm 3 binds operands to
    /// `beforestate.y`; undo restores `writeset` entries from here.
    pub before_image: DbState,
    /// After image over the static read ∪ write set.
    pub after_image: DbState,
}

impl ExecOutcome {
    /// Convenience: the value this execution observed for `var`, if it read
    /// it.
    pub fn read_value(&self, var: VarId) -> Option<Value> {
        self.reads.get(&var).copied()
    }

    /// Convenience: the value this execution wrote to `var`, if it wrote it.
    pub fn written_value(&self, var: VarId) -> Option<Value> {
        self.writes.get(&var).copied()
    }
}

/// The *delta* of one execution: everything [`execute`] records except the
/// materialized after state and the before/after images.
///
/// Produced by [`execute_view`], which runs against any [`StateRead`] —
/// in particular a copy-on-write
/// [`OverlayState`](crate::OverlayState) — so history execution can apply
/// the writes to an overlay instead of cloning a full state per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecDelta {
    /// The values the transaction observed for each item it read.
    pub reads: BTreeMap<VarId, Value>,
    /// The values the transaction wrote.
    pub writes: BTreeMap<VarId, Value>,
    /// Items actually read on the taken path (⊆ static read set).
    pub observed_readset: VarSet,
    /// Items actually written on the taken path (⊆ static write set).
    pub observed_writeset: VarSet,
}

/// Executes `program` against a read-only state view, returning the
/// execution delta. Semantics are identical to [`execute`]; only the
/// output shape differs (no state copies are made).
///
/// # Errors
///
/// Same as [`execute`].
pub fn execute_view(
    program: &Program,
    params: &[Value],
    state: &dyn StateRead,
    fix: &Fix,
) -> Result<ExecDelta, TxnError> {
    let mut interp = Interp {
        env: BTreeMap::new(),
        reads: BTreeMap::new(),
        writes: BTreeMap::new(),
        observed_readset: VarSet::new(),
        observed_writeset: VarSet::new(),
        state,
        fix,
        params,
    };
    interp.run_block(program.statements())?;
    Ok(ExecDelta {
        reads: interp.reads,
        writes: interp.writes,
        observed_readset: interp.observed_readset,
        observed_writeset: interp.observed_writeset,
    })
}

/// Executes `program` on `state` with `params` and `fix`.
///
/// Reads of items pinned in `fix` observe the pinned value; all other reads
/// observe `state`. The input state is not modified; the outcome's `after`
/// is a copy with the writes applied.
///
/// # Errors
///
/// * [`TxnError::MissingVariable`] — a read touched an item absent from the
///   state (and not pinned).
/// * [`TxnError::MissingParameter`] — the program references a parameter
///   index `>= params.len()`.
pub fn execute(
    program: &Program,
    params: &[Value],
    state: &DbState,
    fix: &Fix,
) -> Result<ExecOutcome, TxnError> {
    let delta = execute_view(program, params, state, fix)?;

    let footprint = program.footprint();
    let before_image = state.project(footprint);
    let mut after = state.clone();
    for (var, value) in &delta.writes {
        after.set(*var, *value);
    }
    let after_image = after.project(footprint);

    Ok(ExecOutcome {
        after,
        reads: delta.reads,
        writes: delta.writes,
        observed_readset: delta.observed_readset,
        observed_writeset: delta.observed_writeset,
        before_image,
        after_image,
    })
}

struct Interp<'a> {
    /// Local context: values read or computed so far.
    env: BTreeMap<VarId, Value>,
    reads: BTreeMap<VarId, Value>,
    writes: BTreeMap<VarId, Value>,
    observed_readset: VarSet,
    observed_writeset: VarSet,
    state: &'a dyn StateRead,
    fix: &'a Fix,
    params: &'a [Value],
}

impl Interp<'_> {
    fn run_block(&mut self, stmts: &[Statement]) -> Result<(), TxnError> {
        for stmt in stmts {
            match stmt {
                Statement::Read(var) => self.do_read(*var)?,
                Statement::Update { target, expr } => {
                    let value = self.eval_expr(expr)?;
                    self.env.insert(*target, value);
                    self.writes.insert(*target, value);
                    self.observed_writeset.insert(*target);
                }
                Statement::If { cond, then_branch, else_branch } => {
                    let taken = {
                        let Interp { env, params, .. } = self;
                        let mut lookup = |var: VarId| {
                            env.get(&var).copied().ok_or(TxnError::MissingVariable { var })
                        };
                        cond.eval_with(&mut lookup, params)?
                    };
                    if taken {
                        self.run_block(then_branch)?;
                    } else {
                        self.run_block(else_branch)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes a read statement. A repeated read of an item already in the
    /// local context is a no-op: the transaction keeps working with the
    /// value it first obtained (or last computed).
    fn do_read(&mut self, var: VarId) -> Result<(), TxnError> {
        if self.env.contains_key(&var) {
            return Ok(());
        }
        let value = match self.fix.get(var) {
            Some(pinned) => pinned,
            None => self.state.read(var).ok_or(TxnError::MissingVariable { var })?,
        };
        self.env.insert(var, value);
        self.reads.insert(var, value);
        self.observed_readset.insert(var);
        Ok(())
    }

    fn eval_expr(&mut self, expr: &crate::expr::Expr) -> Result<Value, TxnError> {
        let Interp { env, params, .. } = self;
        let mut lookup =
            |var: VarId| env.get(&var).copied().ok_or(TxnError::MissingVariable { var });
        expr.eval_with(&mut lookup, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    /// B1 from Section 3: if x > 0 then y := y + z + 3.
    fn b1() -> Program {
        ProgramBuilder::new("B1")
            .read(v(0)) // x
            .read(v(1)) // y
            .read(v(2)) // z
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.update(v(1), Expr::var(v(1)) + Expr::var(v(2)) + Expr::konst(3)),
                |b| b,
            )
            .build()
            .unwrap()
    }

    /// G2 from Section 3: x := x - 1.
    fn g2() -> Program {
        ProgramBuilder::new("G2")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) - Expr::konst(1))
            .build()
            .unwrap()
    }

    fn s0() -> DbState {
        // s0 = {x = 1; y = 7; z = 2}
        [(v(0), 1), (v(1), 7), (v(2), 2)].into_iter().collect()
    }

    #[test]
    fn paper_section3_history_h1() {
        // H1 = s0 B1 s1 G2 s2 with s1 = {1, 12, 2}, s2 = {0, 12, 2}.
        let r1 = execute(&b1(), &[], &s0(), &Fix::empty()).unwrap();
        assert_eq!(r1.after.get(v(1)), 12);
        assert_eq!(r1.after.get(v(0)), 1);
        let r2 = execute(&g2(), &[], &r1.after, &Fix::empty()).unwrap();
        assert_eq!(r2.after.get(v(0)), 0);
        assert_eq!(r2.after.get(v(1)), 12);
    }

    #[test]
    fn paper_section3_swap_without_fix_differs() {
        // H2 = s0 G2 s3 B1 s3': B1 now sees x = 0 and skips the update,
        // so the final y differs from H1's 12.
        let r1 = execute(&g2(), &[], &s0(), &Fix::empty()).unwrap();
        let r2 = execute(&b1(), &[], &r1.after, &Fix::empty()).unwrap();
        assert_eq!(r2.after.get(v(1)), 7);
    }

    #[test]
    fn paper_section3_swap_with_fix_restores_final_state() {
        // H3 = s0 G2 s3 B1^{x} s2 with the fix pinning x to 1 (the value B1
        // read in the original history) ends in the original final state s2.
        let r1 = execute(&g2(), &[], &s0(), &Fix::empty()).unwrap();
        let fix: Fix = [(v(0), 1)].into_iter().collect();
        let r2 = execute(&b1(), &[], &r1.after, &fix).unwrap();
        assert_eq!(r2.after.get(v(0)), 0);
        assert_eq!(r2.after.get(v(1)), 12);
        assert_eq!(r2.after.get(v(2)), 2);
    }

    #[test]
    fn observed_sets_follow_taken_path() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.read(v(1)).update(v(1), Expr::var(v(1)) + Expr::konst(1)),
                |b| b.read(v(2)).update(v(2), Expr::var(v(2)) + Expr::konst(1)),
            )
            .build()
            .unwrap();
        let s: DbState = [(v(0), 5), (v(1), 0), (v(2), 0)].into_iter().collect();
        let out = execute(&p, &[], &s, &Fix::empty()).unwrap();
        assert!(out.observed_readset.contains(v(1)));
        assert!(!out.observed_readset.contains(v(2)));
        assert!(out.observed_writeset.contains(v(1)));
        assert!(!out.observed_writeset.contains(v(2)));
        // Static sets still cover both branches.
        assert!(p.readset().contains(v(2)));
    }

    #[test]
    fn reads_record_observed_values() {
        let out = execute(&b1(), &[], &s0(), &Fix::empty()).unwrap();
        assert_eq!(out.read_value(v(0)), Some(1));
        assert_eq!(out.read_value(v(1)), Some(7));
        assert_eq!(out.written_value(v(1)), Some(12));
        assert_eq!(out.written_value(v(0)), None);
    }

    #[test]
    fn fix_read_is_recorded_as_pinned_value() {
        let fix: Fix = [(v(0), 42)].into_iter().collect();
        let out = execute(&g2(), &[], &s0(), &fix).unwrap();
        assert_eq!(out.read_value(v(0)), Some(42));
        assert_eq!(out.after.get(v(0)), 41);
    }

    #[test]
    fn images_cover_static_footprint() {
        let out = execute(&b1(), &[], &s0(), &Fix::empty()).unwrap();
        assert_eq!(out.before_image.len(), 3);
        assert_eq!(out.before_image.get(v(1)), 7);
        assert_eq!(out.after_image.get(v(1)), 12);
    }

    #[test]
    fn missing_variable_errors() {
        let s: DbState = [(v(0), 1)].into_iter().collect();
        let err = execute(&b1(), &[], &s, &Fix::empty()).unwrap_err();
        assert_eq!(err, TxnError::MissingVariable { var: v(1) });
    }

    #[test]
    fn missing_parameter_errors() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::param(0))
            .build()
            .unwrap();
        let s: DbState = [(v(0), 1)].into_iter().collect();
        let err = execute(&p, &[], &s, &Fix::empty()).unwrap_err();
        assert_eq!(err, TxnError::MissingParameter { index: 0, supplied: 0 });
    }

    #[test]
    fn parameters_are_used() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::param(1))
            .build()
            .unwrap();
        let s: DbState = [(v(0), 10)].into_iter().collect();
        let out = execute(&p, &[3, 7], &s, &Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 17);
    }

    #[test]
    fn input_state_is_untouched() {
        let s = s0();
        let _ = execute(&b1(), &[], &s, &Fix::empty()).unwrap();
        assert_eq!(s.get(v(1)), 7);
    }

    #[test]
    fn update_visible_to_later_statements() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .read(v(1))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .update(v(1), Expr::var(v(0)) * Expr::konst(10))
            .build()
            .unwrap();
        let s: DbState = [(v(0), 1), (v(1), 0)].into_iter().collect();
        let out = execute(&p, &[], &s, &Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(1)), 20);
    }

    #[test]
    fn blind_write_executes() {
        let p = ProgramBuilder::new("blind")
            .allow_blind_writes()
            .read(v(1))
            .update(v(0), Expr::var(v(1)) + Expr::konst(1))
            .build()
            .unwrap();
        let s: DbState = [(v(0), 0), (v(1), 4)].into_iter().collect();
        let out = execute(&p, &[], &s, &Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 5);
        assert_eq!(out.read_value(v(0)), None);
        assert!(out.observed_writeset.contains(v(0)));
    }

    #[test]
    fn execute_view_matches_execute_through_an_overlay() {
        use crate::state::OverlayState;
        // Run H1 = s0 B1 s1 G2 s2 both ways: clone-per-step via execute(),
        // and through one overlay via execute_view(). Same states, same
        // observations.
        let (b1p, g2p, s) = (b1(), g2(), s0());
        let r1 = execute(&b1p, &[], &s, &Fix::empty()).unwrap();
        let r2 = execute(&g2p, &[], &r1.after, &Fix::empty()).unwrap();

        let mut view = OverlayState::new(&s);
        let d1 = execute_view(&b1p, &[], &view, &Fix::empty()).unwrap();
        assert_eq!(d1.reads, r1.reads);
        assert_eq!(d1.writes, r1.writes);
        assert_eq!(d1.observed_readset, r1.observed_readset);
        assert_eq!(d1.observed_writeset, r1.observed_writeset);
        view.apply_writes(&d1.writes);
        let d2 = execute_view(&g2p, &[], &view, &Fix::empty()).unwrap();
        assert_eq!(d2.writes, r2.writes);
        view.apply_writes(&d2.writes);
        assert_eq!(view.materialize(), r2.after);
    }

    #[test]
    fn reread_after_update_keeps_local_value() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(5))
            .read(v(0)) // no-op: local context already has d0
            .build()
            .unwrap();
        let s: DbState = [(v(0), 1)].into_iter().collect();
        let out = execute(&p, &[], &s, &Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 6);
        // The re-read is not recorded as a state read.
        assert_eq!(out.read_value(v(0)), Some(1));
    }
}
