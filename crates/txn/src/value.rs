//! Data item identifiers, values, and variable sets.

use std::collections::BTreeSet;
use std::fmt;

/// The value type stored in every data item.
///
/// The paper's examples are all integer arithmetic; using a signed 64-bit
/// integer keeps final-state equivalence checks exact (no floating-point
/// rounding) while covering banking/inventory/reservation workloads.
pub type Value = i64;

/// Identifier of a replicated data item (the paper's `d1, d2, ...`, or the
/// named variables `x, y, z` of Section 3).
///
/// `VarId` is a dense index so that per-variable bookkeeping can use vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        VarId(index)
    }

    /// Returns the dense index of this variable.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl From<u32> for VarId {
    fn from(index: u32) -> Self {
        VarId(index)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// An ordered set of data items, used for read sets and write sets.
///
/// Backed by a [`BTreeSet`] so iteration order is deterministic, which keeps
/// every experiment in the workspace reproducible from a seed.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{VarId, VarSet};
///
/// let a: VarSet = [VarId::new(1), VarId::new(2)].into_iter().collect();
/// let b: VarSet = [VarId::new(2), VarId::new(3)].into_iter().collect();
/// assert!(a.intersects(&b));
/// assert_eq!(a.intersection(&b).len(), 1);
/// assert!(a.difference(&b).contains(VarId::new(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarSet(BTreeSet<VarId>);

impl VarSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VarSet(BTreeSet::new())
    }

    /// Returns `true` if the set contains no variables.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Inserts a variable; returns `true` if it was not already present.
    pub fn insert(&mut self, var: VarId) -> bool {
        self.0.insert(var)
    }

    /// Removes a variable; returns `true` if it was present.
    pub fn remove(&mut self, var: VarId) -> bool {
        self.0.remove(&var)
    }

    /// Returns `true` if `var` is a member.
    pub fn contains(&self, var: VarId) -> bool {
        self.0.contains(&var)
    }

    /// Returns `true` if the two sets share at least one variable.
    ///
    /// This is the primitive behind the paper's *conflict* test ("two
    /// operations conflict if one is a write") and the *can follow* relation
    /// of Definition 3.
    pub fn intersects(&self, other: &VarSet) -> bool {
        // Iterate the smaller set for an O(min * log max) test.
        let (small, large) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        small.iter().any(|v| large.contains(v))
    }

    /// Set intersection.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        VarSet(self.0.intersection(&other.0).copied().collect())
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        VarSet(self.0.union(&other.0).copied().collect())
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        VarSet(self.0.difference(&other.0).copied().collect())
    }

    /// Returns `true` if every member of `self` is a member of `other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Iterates the variables in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.0.iter().copied()
    }

    /// Adds every member of `other` to `self`.
    pub fn extend_from(&mut self, other: &VarSet) {
        self.0.extend(other.0.iter().copied());
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        VarSet(iter.into_iter().collect())
    }
}

/// A flat, overlap-test-optimized view of a [`VarSet`].
///
/// The merge hot path asks one question about read/write sets over and
/// over: *do these two sets share a variable?* A `VarMask` answers it with
/// a single 64-bit summary AND (each variable hashes to bit `index % 64`)
/// that rejects most disjoint pairs in one instruction, falling back to a
/// linear merge over the sorted indices only when the summaries collide.
/// The answer is always exact — the summary is a filter, not the verdict.
///
/// Masks are precomputed once per [`Program`](crate::Program) at build
/// time, so conflict tests on the merge path allocate nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarMask {
    /// Bit `i % 64` is set for every member with index `i`.
    summary: u64,
    /// Member indices in ascending order.
    sorted: Vec<u32>,
}

impl VarMask {
    /// Builds the mask of a variable set.
    pub fn from_set(set: &VarSet) -> Self {
        let sorted: Vec<u32> = set.iter().map(VarId::index).collect();
        let mut summary = 0u64;
        for i in &sorted {
            summary |= 1u64 << (i % 64);
        }
        VarMask { summary, sorted }
    }

    /// Returns `true` if the mask has no members.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The 64-bit summary (bit `i % 64` set per member index `i`) — the
    /// compact footprint fingerprint carried on telemetry events. A
    /// filter, not the membership verdict: use [`VarMask::contains`] /
    /// [`VarMask::intersects`] for exact answers.
    pub fn summary(&self) -> u64 {
        self.summary
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Exact membership test.
    pub fn contains(&self, var: VarId) -> bool {
        let i = var.index();
        self.summary & (1u64 << (i % 64)) != 0 && self.sorted.binary_search(&i).is_ok()
    }

    /// Exact overlap test, equivalent to [`VarSet::intersects`] on the
    /// originating sets.
    pub fn intersects(&self, other: &VarMask) -> bool {
        if self.summary & other.summary == 0 {
            return false;
        }
        // Summaries collide: confirm with a linear merge of the sorted
        // index lists.
        let (mut a, mut b) = (self.sorted.iter().peekable(), other.sorted.iter().peekable());
        while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
            match x.cmp(y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Iterates the member indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.sorted.iter().map(|i| VarId::new(*i))
    }
}

impl Extend<VarId> for VarSet {
    fn extend<I: IntoIterator<Item = VarId>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl<'a> IntoIterator for &'a VarSet {
    type Item = VarId;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, VarId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn varset_basic_ops() {
        let mut s = VarSet::new();
        assert!(s.is_empty());
        assert!(s.insert(v(3)));
        assert!(!s.insert(v(3)));
        assert!(s.insert(v(1)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(v(1)));
        assert!(!s.contains(v(2)));
        assert!(s.remove(v(1)));
        assert!(!s.remove(v(1)));
    }

    #[test]
    fn varset_algebra() {
        let a: VarSet = [v(1), v(2), v(3)].into_iter().collect();
        let b: VarSet = [v(3), v(4)].into_iter().collect();
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), [v(3)].into_iter().collect());
        assert_eq!(a.union(&b), [v(1), v(2), v(3), v(4)].into_iter().collect());
        assert_eq!(a.difference(&b), [v(1), v(2)].into_iter().collect());
        assert!(a.intersection(&b).is_subset(&a));
        let empty = VarSet::new();
        assert!(!a.intersects(&empty));
        assert!(empty.is_subset(&a));
    }

    #[test]
    fn varset_iteration_is_sorted() {
        let s: VarSet = [v(9), v(1), v(5)].into_iter().collect();
        let order: Vec<u32> = s.iter().map(VarId::index).collect();
        assert_eq!(order, vec![1, 5, 9]);
    }

    #[test]
    fn varset_display() {
        let s: VarSet = [v(2), v(1)].into_iter().collect();
        assert_eq!(s.to_string(), "{d1, d2}");
        assert_eq!(VarSet::new().to_string(), "{}");
    }

    #[test]
    fn varid_display_and_ord() {
        assert_eq!(v(7).to_string(), "d7");
        assert!(v(1) < v(2));
        assert_eq!(VarId::from(4u32), v(4));
        assert_eq!(v(4).index(), 4);
    }

    #[test]
    fn varmask_matches_varset_semantics() {
        let a: VarSet = [v(1), v(2), v(3)].into_iter().collect();
        let b: VarSet = [v(3), v(4)].into_iter().collect();
        let c: VarSet = [v(7), v(9)].into_iter().collect();
        let (ma, mb, mc) = (VarMask::from_set(&a), VarMask::from_set(&b), VarMask::from_set(&c));
        assert_eq!(ma.intersects(&mb), a.intersects(&b));
        assert_eq!(ma.intersects(&mc), a.intersects(&c));
        assert!(ma.contains(v(2)));
        assert!(!ma.contains(v(4)));
        assert_eq!(ma.len(), 3);
        assert!(!ma.is_empty());
        assert!(VarMask::from_set(&VarSet::new()).is_empty());
        assert_eq!(ma.iter().collect::<Vec<_>>(), vec![v(1), v(2), v(3)]);
    }

    #[test]
    fn varmask_summary_collisions_stay_exact() {
        // 1 and 65 share summary bit 1 but are different variables: the
        // sorted-scan fallback must still answer "disjoint".
        let a: VarSet = [v(1)].into_iter().collect();
        let b: VarSet = [v(65)].into_iter().collect();
        let (ma, mb) = (VarMask::from_set(&a), VarMask::from_set(&b));
        assert!(!ma.intersects(&mb));
        assert!(!ma.contains(v(65)));
        // And a genuine overlap past the collision is found.
        let c: VarSet = [v(65), v(1)].into_iter().collect();
        assert!(ma.intersects(&VarMask::from_set(&c)));
    }
}
