//! Fixes: pinned read values attached to a repositioned transaction.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::{Value, VarId, VarSet};

/// A *fix* for a transaction `T` in a rewritten history (Definition 1 of the
/// paper).
///
/// A fix is a set of variables, each associated with the value `T` read for
/// it **in its original position**. When the interpreter executes `T` with a
/// fix `F`, reads of variables in `F` return the pinned value instead of the
/// value in the before state. Fixes are what keep rewritten histories
/// final-state equivalent to the original (Lemma 1).
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{Fix, VarId};
///
/// let x = VarId::new(0);
/// let mut f = Fix::empty();
/// assert!(f.is_empty());
/// f.pin(x, 1);
/// assert_eq!(f.get(x), Some(1));
/// assert!(f.vars().contains(x));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fix {
    pins: BTreeMap<VarId, Value>,
}

impl Fix {
    /// The empty fix (ordinary execution; every transaction in an original
    /// serializable history carries the empty fix).
    pub fn empty() -> Self {
        Fix { pins: BTreeMap::new() }
    }

    /// Returns `true` if no variables are pinned.
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// Number of pinned variables.
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// Pins `var` to `value`. If `var` was already pinned the earlier value
    /// wins, because a fix records what the transaction read *in the original
    /// history*, which never changes during rewriting.
    pub fn pin(&mut self, var: VarId, value: Value) {
        self.pins.entry(var).or_insert(value);
    }

    /// Returns the pinned value for `var`, if any.
    pub fn get(&self, var: VarId) -> Option<Value> {
        self.pins.get(&var).copied()
    }

    /// Returns `true` if `var` is pinned.
    pub fn contains(&self, var: VarId) -> bool {
        self.pins.contains_key(&var)
    }

    /// The set of pinned variables (the paper writes fixes as bare variable
    /// sets, e.g. `B1^{x}`, leaving values implicit).
    pub fn vars(&self) -> VarSet {
        self.pins.keys().copied().collect()
    }

    /// Iterates `(variable, pinned value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.pins.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges `other` into `self` (Lemma 1: `F2 = F1 ∪ (T.readset ∩
    /// R.writeset)`). Existing pins win, matching [`Fix::pin`].
    pub fn merge(&mut self, other: &Fix) {
        for (var, value) in other.iter() {
            self.pin(var, value);
        }
    }
}

impl FromIterator<(VarId, Value)> for Fix {
    fn from_iter<I: IntoIterator<Item = (VarId, Value)>>(iter: I) -> Self {
        let mut fix = Fix::empty();
        for (var, value) in iter {
            fix.pin(var, value);
        }
        fix
    }
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({var}, {value})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn pin_and_get() {
        let mut f = Fix::empty();
        assert!(f.is_empty());
        f.pin(v(0), 5);
        assert_eq!(f.get(v(0)), Some(5));
        assert_eq!(f.get(v(1)), None);
        assert!(f.contains(v(0)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn first_pin_wins() {
        // A fix records the ORIGINAL read value; later attempts to re-pin
        // (e.g. when a transaction is jumped twice) must not clobber it.
        let mut f = Fix::empty();
        f.pin(v(0), 5);
        f.pin(v(0), 9);
        assert_eq!(f.get(v(0)), Some(5));
    }

    #[test]
    fn merge_keeps_existing() {
        let mut a: Fix = [(v(0), 1), (v(1), 2)].into_iter().collect();
        let b: Fix = [(v(1), 99), (v(2), 3)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get(v(0)), Some(1));
        assert_eq!(a.get(v(1)), Some(2));
        assert_eq!(a.get(v(2)), Some(3));
        assert_eq!(a.vars(), [v(0), v(1), v(2)].into_iter().collect());
    }

    #[test]
    fn display() {
        let f: Fix = [(v(1), 7)].into_iter().collect();
        assert_eq!(f.to_string(), "{(d1, 7)}");
        assert_eq!(Fix::empty().to_string(), "{}");
    }
}
