//! Error type for the transaction substrate.

use std::fmt;

use crate::value::VarId;

/// Errors raised while building or executing transaction programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A statement referenced a variable that has not been read yet.
    ///
    /// The paper assumes every value used in an update was read first (no
    /// blind writes, and `x := f(x, y1..yn)` reads its operands).
    UnreadVariable {
        /// The offending variable.
        var: VarId,
        /// Name of the program being built or executed.
        program: String,
    },
    /// A program attempted to update the same data item twice.
    ///
    /// Section 6.2 of the paper assumes "each data item is updated only once
    /// in a transaction".
    DuplicateUpdate {
        /// The variable updated more than once.
        var: VarId,
        /// Name of the program being built.
        program: String,
    },
    /// A read or update referenced a variable missing from the database
    /// state.
    MissingVariable {
        /// The variable absent from the state.
        var: VarId,
    },
    /// An expression referenced a parameter index that was not supplied.
    MissingParameter {
        /// The out-of-range parameter index.
        index: usize,
        /// How many parameters were supplied.
        supplied: usize,
    },
    /// A transaction type name was not found in the registry.
    UnknownTxnType {
        /// The unknown type name.
        name: String,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::UnreadVariable { var, program } => {
                write!(f, "variable {var} used before being read in program `{program}`")
            }
            TxnError::DuplicateUpdate { var, program } => {
                write!(f, "variable {var} updated more than once in program `{program}`")
            }
            TxnError::MissingVariable { var } => {
                write!(f, "variable {var} is not present in the database state")
            }
            TxnError::MissingParameter { index, supplied } => {
                write!(f, "parameter p{index} referenced but only {supplied} supplied")
            }
            TxnError::UnknownTxnType { name } => {
                write!(f, "unknown transaction type `{name}`")
            }
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TxnError::UnreadVariable { var: VarId::new(3), program: "t".into() };
        assert!(e.to_string().contains("d3"));
        let e = TxnError::MissingParameter { index: 2, supplied: 1 };
        assert!(e.to_string().contains("p2"));
        let e = TxnError::UnknownTxnType { name: "t".into() };
        assert!(e.to_string().contains("unknown"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<TxnError>();
    }
}
