//! Arithmetic expressions and boolean predicates over data items.
//!
//! Expressions are the `f` in the paper's update statements
//! `x := f(x, y1, ..., yn)`; predicates are the `c` in conditional
//! statements `if c then SS1 else SS2`.
//!
//! # Total semantics
//!
//! Evaluation is **total** over any environment that supplies every
//! referenced variable and parameter: addition, subtraction, and
//! multiplication wrap on overflow, and division/remainder by zero yield
//! `0`. Total semantics keep randomly generated workloads executable in both
//! orders when testing commutativity, at the cost of non-standard corner
//! cases that the canned transaction library never hits.

use std::fmt;
use std::ops;

use crate::error::TxnError;
use crate::value::{Value, VarId, VarSet};

/// An integer expression over data items, transaction parameters, and
/// constants.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{Expr, VarId};
///
/// let x = VarId::new(0);
/// // x * 2 + p0
/// let e = Expr::var(x) * Expr::konst(2) + Expr::param(0);
/// assert!(e.vars().contains(x));
/// assert_eq!(e.max_param(), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// The current value of a data item (as read by the transaction).
    Var(VarId),
    /// A transaction input parameter, by position.
    Param(usize),
    /// Wrapping addition.
    Add(Box<Expr>, Box<Expr>),
    /// Wrapping subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Wrapping multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Truncated division; division by zero yields `0`.
    Div(Box<Expr>, Box<Expr>),
    /// Remainder; remainder by zero yields `0`.
    Mod(Box<Expr>, Box<Expr>),
    /// Minimum of the two operands.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum of the two operands.
    Max(Box<Expr>, Box<Expr>),
    /// Wrapping negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// A constant expression.
    pub fn konst(v: Value) -> Expr {
        Expr::Const(v)
    }

    /// A data-item read.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// A positional transaction parameter.
    pub fn param(i: usize) -> Expr {
        Expr::Param(i)
    }

    /// Minimum of `self` and `other`.
    pub fn min(self, other: Expr) -> Expr {
        Expr::Min(Box::new(self), Box::new(other))
    }

    /// Maximum of `self` and `other`.
    pub fn max(self, other: Expr) -> Expr {
        Expr::Max(Box::new(self), Box::new(other))
    }

    /// The predicate `self > other`.
    pub fn gt(self, other: Expr) -> Pred {
        Pred::Cmp(CmpOp::Gt, self, other)
    }

    /// The predicate `self >= other`.
    pub fn ge(self, other: Expr) -> Pred {
        Pred::Cmp(CmpOp::Ge, self, other)
    }

    /// The predicate `self < other`.
    pub fn lt(self, other: Expr) -> Pred {
        Pred::Cmp(CmpOp::Lt, self, other)
    }

    /// The predicate `self <= other`.
    pub fn le(self, other: Expr) -> Pred {
        Pred::Cmp(CmpOp::Le, self, other)
    }

    /// The predicate `self == other`.
    pub fn eq_(self, other: Expr) -> Pred {
        Pred::Cmp(CmpOp::Eq, self, other)
    }

    /// The predicate `self != other`.
    pub fn ne_(self, other: Expr) -> Pred {
        Pred::Cmp(CmpOp::Ne, self, other)
    }

    /// The set of data items this expression reads.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut VarSet) {
        match self {
            Expr::Const(_) | Expr::Param(_) => {}
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Neg(a) => a.collect_vars(out),
        }
    }

    /// The highest parameter index referenced, if any.
    pub fn max_param(&self) -> Option<usize> {
        match self {
            Expr::Const(_) | Expr::Var(_) => None,
            Expr::Param(i) => Some(*i),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => a.max_param().max(b.max_param()),
            Expr::Neg(a) => a.max_param(),
        }
    }

    /// The same expression with every parameter index shifted up by
    /// `offset` — the renumbering used when programs are sequenced into a
    /// composite whose parameter vector is the concatenation of its
    /// constituents' vectors.
    #[must_use]
    pub fn shift_params(&self, offset: usize) -> Expr {
        if offset == 0 {
            return self.clone();
        }
        let s = |e: &Expr| Box::new(e.shift_params(offset));
        match self {
            Expr::Const(v) => Expr::Const(*v),
            Expr::Var(v) => Expr::Var(*v),
            Expr::Param(i) => Expr::Param(i + offset),
            Expr::Add(a, b) => Expr::Add(s(a), s(b)),
            Expr::Sub(a, b) => Expr::Sub(s(a), s(b)),
            Expr::Mul(a, b) => Expr::Mul(s(a), s(b)),
            Expr::Div(a, b) => Expr::Div(s(a), s(b)),
            Expr::Mod(a, b) => Expr::Mod(s(a), s(b)),
            Expr::Min(a, b) => Expr::Min(s(a), s(b)),
            Expr::Max(a, b) => Expr::Max(s(a), s(b)),
            Expr::Neg(a) => Expr::Neg(s(a)),
        }
    }

    /// Evaluates the expression.
    ///
    /// `lookup` supplies the value of each data item (the interpreter passes
    /// a closure that consults the fix before the local read environment).
    ///
    /// # Errors
    ///
    /// Returns whatever error `lookup` returns, or
    /// [`TxnError::MissingParameter`] for an out-of-range parameter.
    pub fn eval_with(
        &self,
        lookup: &mut dyn FnMut(VarId) -> Result<Value, TxnError>,
        params: &[Value],
    ) -> Result<Value, TxnError> {
        Ok(match self {
            Expr::Const(v) => *v,
            Expr::Var(v) => lookup(*v)?,
            Expr::Param(i) => *params
                .get(*i)
                .ok_or(TxnError::MissingParameter { index: *i, supplied: params.len() })?,
            Expr::Add(a, b) => {
                a.eval_with(lookup, params)?.wrapping_add(b.eval_with(lookup, params)?)
            }
            Expr::Sub(a, b) => {
                a.eval_with(lookup, params)?.wrapping_sub(b.eval_with(lookup, params)?)
            }
            Expr::Mul(a, b) => {
                a.eval_with(lookup, params)?.wrapping_mul(b.eval_with(lookup, params)?)
            }
            Expr::Div(a, b) => {
                let d = b.eval_with(lookup, params)?;
                if d == 0 {
                    0
                } else {
                    a.eval_with(lookup, params)?.wrapping_div(d)
                }
            }
            Expr::Mod(a, b) => {
                let d = b.eval_with(lookup, params)?;
                if d == 0 {
                    0
                } else {
                    a.eval_with(lookup, params)?.wrapping_rem(d)
                }
            }
            Expr::Min(a, b) => a.eval_with(lookup, params)?.min(b.eval_with(lookup, params)?),
            Expr::Max(a, b) => a.eval_with(lookup, params)?.max(b.eval_with(lookup, params)?),
            Expr::Neg(a) => a.eval_with(lookup, params)?.wrapping_neg(),
        })
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    /// Truncated division; division by zero evaluates to `0` (total
    /// semantics — see the module docs).
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

impl ops::Rem for Expr {
    type Output = Expr;
    /// Remainder; remainder by zero evaluates to `0` (total semantics —
    /// see the module docs).
    fn rem(self, rhs: Expr) -> Expr {
        Expr::Mod(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Param(i) => write!(f, "p{i}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// Comparison operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn apply(self, a: Value, b: Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over data items and parameters (the guard of a
/// conditional statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Always true.
    True,
    /// Comparison of two expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Conjunction of `self` and `other`.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction of `self` and `other`.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Negation of `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// The set of data items this predicate reads.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut VarSet) {
        match self {
            Pred::True => {}
            Pred::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Pred::Not(a) => a.collect_vars(out),
        }
    }

    /// The highest parameter index referenced, if any.
    pub fn max_param(&self) -> Option<usize> {
        match self {
            Pred::True => None,
            Pred::Cmp(_, a, b) => a.max_param().max(b.max_param()),
            Pred::And(a, b) | Pred::Or(a, b) => a.max_param().max(b.max_param()),
            Pred::Not(a) => a.max_param(),
        }
    }

    /// The same predicate with every parameter index shifted up by
    /// `offset` (see [`Expr::shift_params`]).
    #[must_use]
    pub fn shift_params(&self, offset: usize) -> Pred {
        if offset == 0 {
            return self.clone();
        }
        match self {
            Pred::True => Pred::True,
            Pred::Cmp(op, a, b) => Pred::Cmp(*op, a.shift_params(offset), b.shift_params(offset)),
            Pred::And(a, b) => {
                Pred::And(Box::new(a.shift_params(offset)), Box::new(b.shift_params(offset)))
            }
            Pred::Or(a, b) => {
                Pred::Or(Box::new(a.shift_params(offset)), Box::new(b.shift_params(offset)))
            }
            Pred::Not(a) => Pred::Not(Box::new(a.shift_params(offset))),
        }
    }

    /// Evaluates the predicate. See [`Expr::eval_with`] for the contract of
    /// `lookup`.
    ///
    /// # Errors
    ///
    /// Propagates errors from `lookup` and out-of-range parameters.
    pub fn eval_with(
        &self,
        lookup: &mut dyn FnMut(VarId) -> Result<Value, TxnError>,
        params: &[Value],
    ) -> Result<bool, TxnError> {
        Ok(match self {
            Pred::True => true,
            Pred::Cmp(op, a, b) => {
                let av = a.eval_with(lookup, params)?;
                let bv = b.eval_with(lookup, params)?;
                op.apply(av, bv)
            }
            Pred::And(a, b) => a.eval_with(lookup, params)? && b.eval_with(lookup, params)?,
            Pred::Or(a, b) => a.eval_with(lookup, params)? || b.eval_with(lookup, params)?,
            Pred::Not(a) => !a.eval_with(lookup, params)?,
        })
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Pred::And(a, b) => write!(f, "({a} && {b})"),
            Pred::Or(a, b) => write!(f, "({a} || {b})"),
            Pred::Not(a) => write!(f, "!({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn eval(e: &Expr, vals: &[(u32, Value)], params: &[Value]) -> Value {
        let mut lookup = |var: VarId| {
            vals.iter()
                .find(|(i, _)| VarId::new(*i) == var)
                .map(|(_, val)| *val)
                .ok_or(TxnError::MissingVariable { var })
        };
        e.eval_with(&mut lookup, params).unwrap()
    }

    #[test]
    fn arithmetic() {
        let e = Expr::var(v(0)) + Expr::konst(3) * Expr::param(0);
        assert_eq!(eval(&e, &[(0, 10)], &[4]), 22);
        let e = Expr::var(v(0)) - Expr::konst(5);
        assert_eq!(eval(&e, &[(0, 3)], &[]), -2);
        let e = -Expr::konst(7);
        assert_eq!(eval(&e, &[], &[]), -7);
        let e = Expr::konst(7).min(Expr::konst(3)).max(Expr::konst(5));
        assert_eq!(eval(&e, &[], &[]), 5);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let e = Expr::konst(10) / Expr::konst(0);
        assert_eq!(eval(&e, &[], &[]), 0);
        let e = Expr::konst(10) % Expr::konst(0);
        assert_eq!(eval(&e, &[], &[]), 0);
        let e = Expr::konst(10) / Expr::konst(3);
        assert_eq!(eval(&e, &[], &[]), 3);
        let e = Expr::konst(10) % Expr::konst(3);
        assert_eq!(eval(&e, &[], &[]), 1);
    }

    #[test]
    fn overflow_wraps() {
        let e = Expr::konst(Value::MAX) + Expr::konst(1);
        assert_eq!(eval(&e, &[], &[]), Value::MIN);
        let e = Expr::konst(Value::MIN) * Expr::konst(-1);
        assert_eq!(eval(&e, &[], &[]), Value::MIN);
        // MIN / -1 overflows with plain division; wrapping_div defines it.
        let e = Expr::konst(Value::MIN) / Expr::konst(-1);
        assert_eq!(eval(&e, &[], &[]), Value::MIN);
    }

    #[test]
    fn missing_parameter_errors() {
        let e = Expr::param(2);
        let mut lookup = |var: VarId| Err(TxnError::MissingVariable { var });
        let err = e.eval_with(&mut lookup, &[1, 2]).unwrap_err();
        assert_eq!(err, TxnError::MissingParameter { index: 2, supplied: 2 });
    }

    #[test]
    fn vars_and_params_collected() {
        let e = (Expr::var(v(1)) + Expr::var(v(2))).min(Expr::param(3));
        assert_eq!(e.vars(), [v(1), v(2)].into_iter().collect());
        assert_eq!(e.max_param(), Some(3));
        assert_eq!(Expr::konst(1).max_param(), None);
    }

    #[test]
    fn predicates() {
        let p = Expr::var(v(0)).gt(Expr::konst(0)).and(Expr::param(0).le(Expr::konst(5)));
        let mut lookup = |_| Ok(3);
        assert!(p.eval_with(&mut lookup, &[5]).unwrap());
        assert!(!p.eval_with(&mut lookup, &[6]).unwrap());
        assert!(p.clone().not().eval_with(&mut lookup, &[6]).unwrap());
        let q = Expr::konst(1).eq_(Expr::konst(2)).or(Pred::True);
        assert!(q.eval_with(&mut lookup, &[]).unwrap());
        assert_eq!(p.vars(), [v(0)].into_iter().collect());
        assert_eq!(p.max_param(), Some(0));
    }

    #[test]
    fn all_comparisons() {
        for (op, expect) in [
            (CmpOp::Eq, false),
            (CmpOp::Ne, true),
            (CmpOp::Lt, true),
            (CmpOp::Le, true),
            (CmpOp::Gt, false),
            (CmpOp::Ge, false),
        ] {
            assert_eq!(op.apply(1, 2), expect, "{op}");
        }
    }

    #[test]
    fn shift_params_renumbers_only_params() {
        let e = (Expr::var(v(1)) + Expr::param(0)).min(Expr::param(2) - Expr::konst(4));
        let shifted = e.shift_params(3);
        assert_eq!(shifted.max_param(), Some(5));
        assert_eq!(shifted.vars(), e.vars());
        assert_eq!(e.shift_params(0), e);
        // Evaluation against a padded parameter vector matches the original.
        let padded = [9, 9, 9, 7, 0, 11];
        assert_eq!(eval(&shifted, &[(1, 5)], &padded), eval(&e, &[(1, 5)], &[7, 0, 11]));
        let p = Expr::param(1).gt(Expr::var(v(0))).and(Pred::True.not());
        assert_eq!(p.shift_params(2).max_param(), Some(3));
        assert_eq!(p.shift_params(0), p);
    }

    #[test]
    fn display_forms() {
        let e = Expr::var(v(0)) + Expr::konst(3);
        assert_eq!(e.to_string(), "(d0 + 3)");
        let p = Expr::var(v(0)).gt(Expr::konst(0));
        assert_eq!(p.to_string(), "d0 > 0");
        assert_eq!(Expr::param(1).to_string(), "p1");
        assert_eq!(Expr::konst(1).min(Expr::konst(2)).to_string(), "min(1, 2)");
    }
}
