//! Canned transaction-type registry.
//!
//! Section 5.1 of the paper distinguishes *canned systems* — "widely used in
//! real applications such as banking systems and airline ticket reservation
//! systems" — where transactions come from a small set of known types whose
//! code is available in advance. For such systems, semantic relations
//! (commutativity, can-precede) are detected **offline between types** and
//! looked up at merge time.
//!
//! This module provides the type identity layer: a [`TypeRegistry`] mapping
//! type names to dense [`TxnTypeId`]s. The declared-relation tables
//! themselves live in the `histmerge-semantics` crate; the canned program
//! library lives in `histmerge-workload`.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::TxnError;

/// Dense identifier of a canned transaction type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnTypeId(u32);

impl TxnTypeId {
    /// Creates a type identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        TxnTypeId(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TxnTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// A registry of canned transaction types.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::registry::TypeRegistry;
///
/// let mut reg = TypeRegistry::new();
/// let deposit = reg.register("deposit");
/// assert_eq!(reg.register("deposit"), deposit); // idempotent
/// assert_eq!(reg.name(deposit), Some("deposit"));
/// assert_eq!(reg.lookup("deposit"), Some(deposit));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    by_name: BTreeMap<String, TxnTypeId>,
    names: Vec<String>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Registers a type name, returning its id. Registering an existing
    /// name returns the existing id.
    pub fn register(&mut self, name: impl Into<String>) -> TxnTypeId {
        let name = name.into();
        if let Some(id) = self.by_name.get(&name) {
            return *id;
        }
        let id = TxnTypeId::new(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Looks up a type by name.
    pub fn lookup(&self, name: &str) -> Option<TxnTypeId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a type by name, returning an error naming the missing type.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::UnknownTxnType`] when the name is unregistered.
    pub fn require(&self, name: &str) -> Result<TxnTypeId, TxnError> {
        self.lookup(name).ok_or_else(|| TxnError::UnknownTxnType { name: name.to_string() })
    }

    /// The name of a registered type.
    pub fn name(&self, id: TxnTypeId) -> Option<&str> {
        self.names.get(id.index() as usize).map(String::as_str)
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TxnTypeId, &str)> + '_ {
        self.names.iter().enumerate().map(|(i, n)| (TxnTypeId::new(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = TypeRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("deposit");
        let b = reg.register("withdraw");
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.lookup("withdraw"), Some(b));
        assert_eq!(reg.lookup("transfer"), None);
        assert_eq!(reg.name(a), Some("deposit"));
        assert_eq!(reg.name(TxnTypeId::new(9)), None);
    }

    #[test]
    fn register_is_idempotent() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("deposit");
        let b = reg.register("deposit");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn require_errors_on_unknown() {
        let reg = TypeRegistry::new();
        let err = reg.require("nope").unwrap_err();
        assert_eq!(err, TxnError::UnknownTxnType { name: "nope".into() });
    }

    #[test]
    fn iteration_order() {
        let mut reg = TypeRegistry::new();
        reg.register("a");
        reg.register("b");
        let collected: Vec<_> = reg.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["a", "b"]);
        assert_eq!(TxnTypeId::new(2).to_string(), "ty2");
    }
}
