//! Transaction programs: statement AST, validation, and static read/write
//! sets.
//!
//! Section 6.2 of the paper fixes the program shape that the undo-repair
//! construction (Algorithm 3) relies on:
//!
//! * a transaction is a sequence of statements, each either an operation or
//!   a conditional `if c then SS1 else SS2`;
//! * each statement updates at most one data item;
//! * each data item is updated at most once (per execution path);
//! * no blind writes: every operand — including the update target — is read
//!   before it is used.

use std::fmt;

use crate::error::TxnError;
use crate::exec::{self, ExecOutcome};
use crate::expr::{Expr, Pred};
use crate::fix::Fix;
use crate::state::DbState;
use crate::value::{Value, VarId, VarMask, VarSet};

/// One statement of a transaction program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// Read a data item into the transaction's local context.
    Read(VarId),
    /// Update one data item: `target := expr`, where `expr` may reference
    /// previously read items and transaction parameters.
    Update {
        /// The data item being written.
        target: VarId,
        /// The right-hand side.
        expr: Expr,
    },
    /// Conditional execution: `if cond then then_branch else else_branch`.
    If {
        /// The guard predicate.
        cond: Pred,
        /// Statements executed when the guard holds.
        then_branch: Vec<Statement>,
        /// Statements executed when the guard does not hold.
        else_branch: Vec<Statement>,
    },
}

impl Statement {
    /// The same statement with every parameter index shifted up by
    /// `offset` (see [`Expr::shift_params`]).
    #[must_use]
    pub fn shift_params(&self, offset: usize) -> Statement {
        if offset == 0 {
            return self.clone();
        }
        match self {
            Statement::Read(v) => Statement::Read(*v),
            Statement::Update { target, expr } => {
                Statement::Update { target: *target, expr: expr.shift_params(offset) }
            }
            Statement::If { cond, then_branch, else_branch } => Statement::If {
                cond: cond.shift_params(offset),
                then_branch: then_branch.iter().map(|s| s.shift_params(offset)).collect(),
                else_branch: else_branch.iter().map(|s| s.shift_params(offset)).collect(),
            },
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Statement::Read(v) => writeln!(f, "{pad}read {v}"),
            Statement::Update { target, expr } => writeln!(f, "{pad}{target} := {expr}"),
            Statement::If { cond, then_branch, else_branch } => {
                writeln!(f, "{pad}if {cond} then")?;
                for s in then_branch {
                    s.fmt_indented(f, depth + 1)?;
                }
                if !else_branch.is_empty() {
                    writeln!(f, "{pad}else")?;
                    for s in else_branch {
                        s.fmt_indented(f, depth + 1)?;
                    }
                }
                writeln!(f, "{pad}end")
            }
        }
    }
}

/// A validated transaction program.
///
/// Construct with [`ProgramBuilder`]. A `Program` knows its static read set
/// (every item appearing in a `read` statement on any path) and static write
/// set (every update target on any path); validation guarantees
/// `writeset ⊆ readset` (no blind writes, the paper's standing assumption in
/// Section 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    stmts: Vec<Statement>,
    readset: VarSet,
    writeset: VarSet,
    /// `readset ∪ writeset`, precomputed so executions stop re-deriving it.
    footprint: VarSet,
    read_mask: VarMask,
    write_mask: VarMask,
    n_params: usize,
}

impl Program {
    /// Returns `true` if the program writes some item it never reads.
    ///
    /// The paper's rewriting model assumes no blind writes ("if a
    /// transaction writes some data, the transaction is assumed to read the
    /// value first", Section 3) but its set-based examples (Example 1) use
    /// them; blind writes must be enabled explicitly with
    /// [`ProgramBuilder::allow_blind_writes`].
    pub fn has_blind_writes(&self) -> bool {
        !self.writeset.is_subset(&self.readset)
    }
}

impl Program {
    /// The program's name (diagnostic only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The statements, in order.
    pub fn statements(&self) -> &[Statement] {
        &self.stmts
    }

    /// Static read set: every data item read on any execution path.
    pub fn readset(&self) -> &VarSet {
        &self.readset
    }

    /// Static write set: every data item updated on any execution path.
    pub fn writeset(&self) -> &VarSet {
        &self.writeset
    }

    /// Static footprint `readset ∪ writeset`, precomputed at build time
    /// (it is the projection domain of every before/after image).
    pub fn footprint(&self) -> &VarSet {
        &self.footprint
    }

    /// Overlap-test mask of the static read set (see [`VarMask`]).
    pub fn read_mask(&self) -> &VarMask {
        &self.read_mask
    }

    /// Overlap-test mask of the static write set (see [`VarMask`]).
    pub fn write_mask(&self) -> &VarMask {
        &self.write_mask
    }

    /// Number of parameters the program expects (highest index + 1).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Total number of statements, counting nested conditional branches
    /// (used by the Section 7.1 cost model, which charges query processing
    /// per statement).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Statement]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Statement::Read(_) | Statement::Update { .. } => 1,
                    Statement::If { then_branch, else_branch, .. } => {
                        1 + count(then_branch) + count(else_branch)
                    }
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Sequential composition of `parts`: a program whose execution is
    /// exactly "run each part in order", with each part's parameter
    /// references shifted so the composite's parameter vector is the
    /// concatenation of its constituents' vectors.
    ///
    /// A composite legitimately violates the *per-transaction* builder
    /// invariants — two constituents may update the same item, and a later
    /// constituent re-reads items an earlier one wrote — so it is
    /// constructed directly here rather than through
    /// [`ProgramBuilder::build`]. What survives by construction: every part
    /// individually validated, the interpreter's read environment persists
    /// across the concatenated statements (a read of an already-available
    /// item is a no-op), so the composite's effect on any state equals the
    /// constituents' sequential effect. Its static sets are the unions of
    /// the constituents' sets.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn sequenced(name: impl Into<String>, parts: &[&Program]) -> Program {
        let mut offset = 0usize;
        let placed: Vec<(&Program, usize)> = parts
            .iter()
            .map(|p| {
                let at = offset;
                offset += p.n_params;
                (*p, at)
            })
            .collect();
        Program::sequenced_with_offsets(name, &placed)
    }

    /// [`Program::sequenced`] with an explicit parameter offset per part.
    ///
    /// Needed when the execution order differs from the parameter layout —
    /// a composite's *inverse* runs the constituents' inverses in reverse
    /// order, but each inverse must still read its slice of the forward
    /// parameter vector at the constituent's forward offset.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn sequenced_with_offsets(name: impl Into<String>, parts: &[(&Program, usize)]) -> Program {
        assert!(!parts.is_empty(), "sequenced composite needs at least one part");
        let mut stmts = Vec::new();
        let mut readset = VarSet::new();
        let mut writeset = VarSet::new();
        let mut n_params = 0usize;
        for (part, offset) in parts {
            stmts.extend(part.stmts.iter().map(|s| s.shift_params(*offset)));
            readset.extend_from(&part.readset);
            writeset.extend_from(&part.writeset);
            n_params = n_params.max(offset + part.n_params);
        }
        let footprint = readset.union(&writeset);
        let read_mask = VarMask::from_set(&readset);
        let write_mask = VarMask::from_set(&writeset);
        Program {
            name: name.into(),
            stmts,
            readset,
            writeset,
            footprint,
            read_mask,
            write_mask,
            n_params,
        }
    }

    /// Executes the program against `state` with the given parameters and
    /// fix, returning the resulting state and observation record.
    ///
    /// Reads of variables pinned in `fix` return the pinned value instead of
    /// the value in `state` (Definition 1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::MissingVariable`] if the state lacks a variable
    /// in the read set, or [`TxnError::MissingParameter`] if too few
    /// parameters are supplied.
    pub fn execute(
        &self,
        params: &[Value],
        state: &DbState,
        fix: &Fix,
    ) -> Result<ExecOutcome, TxnError> {
        exec::execute(self, params, state, fix)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} (params: {})", self.name, self.n_params)?;
        for s in &self.stmts {
            s.fmt_indented(f, 1)?;
        }
        Ok(())
    }
}

/// Builder for [`Program`] values.
///
/// The builder records statements in order; [`ProgramBuilder::build`]
/// validates the paper's structural assumptions and computes static
/// read/write sets.
///
/// # Example
///
/// ```rust
/// use histmerge_txn::{Expr, ProgramBuilder, VarId};
///
/// # fn main() -> Result<(), histmerge_txn::TxnError> {
/// let x = VarId::new(0);
/// let p = ProgramBuilder::new("incr")
///     .read(x)
///     .update(x, Expr::var(x) + Expr::param(0))
///     .build()?;
/// assert!(p.writeset().contains(x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    stmts: Vec<Statement>,
    allow_blind: bool,
}

impl ProgramBuilder {
    /// Starts a new program with the given diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder { name: name.into(), stmts: Vec::new(), allow_blind: false }
    }

    /// Permits update statements whose target was never read (blind
    /// writes). Update *operands* must still have been read.
    ///
    /// Needed only for set-level modelling such as the paper's Example 1;
    /// the rewriting algorithms reject or degrade on blind-writing
    /// transactions per Section 3.
    #[must_use]
    pub fn allow_blind_writes(mut self) -> Self {
        self.allow_blind = true;
        self
    }

    /// Appends a read statement.
    pub fn read(mut self, var: VarId) -> Self {
        self.stmts.push(Statement::Read(var));
        self
    }

    /// Appends read statements for each variable in order.
    pub fn read_all<I: IntoIterator<Item = VarId>>(mut self, vars: I) -> Self {
        for v in vars {
            self.stmts.push(Statement::Read(v));
        }
        self
    }

    /// Appends an update statement `target := expr`.
    pub fn update(mut self, target: VarId, expr: Expr) -> Self {
        self.stmts.push(Statement::Update { target, expr });
        self
    }

    /// Appends a conditional. Each closure receives a fresh builder for its
    /// branch and returns it with the branch's statements appended.
    pub fn branch(
        mut self,
        cond: Pred,
        then_b: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
        else_b: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
    ) -> Self {
        let tb = then_b(ProgramBuilder::new("then"));
        let eb = else_b(ProgramBuilder::new("else"));
        self.stmts.push(Statement::If { cond, then_branch: tb.stmts, else_branch: eb.stmts });
        self
    }

    /// Appends a raw statement (used by workload generators that construct
    /// ASTs directly).
    pub fn statement(mut self, stmt: Statement) -> Self {
        self.stmts.push(stmt);
        self
    }

    /// Validates the program and computes its static read/write sets.
    ///
    /// # Errors
    ///
    /// * [`TxnError::UnreadVariable`] — an update target, update operand, or
    ///   guard variable is used on some path before being read.
    /// * [`TxnError::DuplicateUpdate`] — some execution path updates the
    ///   same data item twice.
    pub fn build(self) -> Result<Program, TxnError> {
        let mut readset = VarSet::new();
        let mut writeset = VarSet::new();
        let mut n_params = 0usize;
        Self::validate_block(
            &self.name,
            self.allow_blind,
            &self.stmts,
            &mut VarSet::new(),
            &mut VarSet::new(),
            &mut readset,
            &mut writeset,
            &mut n_params,
        )?;
        let footprint = readset.union(&writeset);
        let read_mask = VarMask::from_set(&readset);
        let write_mask = VarMask::from_set(&writeset);
        Ok(Program {
            name: self.name,
            stmts: self.stmts,
            readset,
            writeset,
            footprint,
            read_mask,
            write_mask,
            n_params,
        })
    }

    /// Walks `stmts` with the set of variables available (read or already
    /// updated) and the set updated so far on this path.
    #[allow(clippy::too_many_arguments)]
    fn validate_block(
        name: &str,
        allow_blind: bool,
        stmts: &[Statement],
        available: &mut VarSet,
        updated: &mut VarSet,
        readset: &mut VarSet,
        writeset: &mut VarSet,
        n_params: &mut usize,
    ) -> Result<(), TxnError> {
        for stmt in stmts {
            match stmt {
                Statement::Read(v) => {
                    available.insert(*v);
                    readset.insert(*v);
                }
                Statement::Update { target, expr } => {
                    for v in expr.vars().iter() {
                        if !available.contains(v) {
                            return Err(TxnError::UnreadVariable {
                                var: v,
                                program: name.to_string(),
                            });
                        }
                    }
                    if !allow_blind && !available.contains(*target) {
                        // No blind writes: the target must have been read.
                        return Err(TxnError::UnreadVariable {
                            var: *target,
                            program: name.to_string(),
                        });
                    }
                    available.insert(*target);
                    if !updated.insert(*target) {
                        return Err(TxnError::DuplicateUpdate {
                            var: *target,
                            program: name.to_string(),
                        });
                    }
                    writeset.insert(*target);
                    if let Some(p) = expr.max_param() {
                        *n_params = (*n_params).max(p + 1);
                    }
                }
                Statement::If { cond, then_branch, else_branch } => {
                    for v in cond.vars().iter() {
                        if !available.contains(v) {
                            return Err(TxnError::UnreadVariable {
                                var: v,
                                program: name.to_string(),
                            });
                        }
                    }
                    if let Some(p) = cond.max_param() {
                        *n_params = (*n_params).max(p + 1);
                    }
                    // Each branch is validated on a copy of the path state;
                    // "updated once" is a per-path property, so updating the
                    // same item in both branches is legal (cf. history H5 in
                    // Section 5.1 of the paper).
                    let mut then_avail = available.clone();
                    let mut then_upd = updated.clone();
                    Self::validate_block(
                        name,
                        allow_blind,
                        then_branch,
                        &mut then_avail,
                        &mut then_upd,
                        readset,
                        writeset,
                        n_params,
                    )?;
                    let mut else_avail = available.clone();
                    let mut else_upd = updated.clone();
                    Self::validate_block(
                        name,
                        allow_blind,
                        else_branch,
                        &mut else_avail,
                        &mut else_upd,
                        readset,
                        writeset,
                        n_params,
                    )?;
                    // After the conditional, only facts common to both
                    // branches are guaranteed.
                    *available = then_avail.intersection(&else_avail);
                    *updated = then_upd.union(&else_upd);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn build_simple_increment() {
        let p = ProgramBuilder::new("inc")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap();
        assert_eq!(p.name(), "inc");
        assert_eq!(p.readset(), &[v(0)].into_iter().collect());
        assert_eq!(p.writeset(), &[v(0)].into_iter().collect());
        assert_eq!(p.n_params(), 0);
        assert_eq!(p.statements().len(), 2);
    }

    #[test]
    fn params_counted() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .branch(
                Expr::param(2).gt(Expr::konst(0)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::param(0)),
                |b| b,
            )
            .build()
            .unwrap();
        assert_eq!(p.n_params(), 3);
    }

    #[test]
    fn blind_write_rejected() {
        let err = ProgramBuilder::new("blind").update(v(0), Expr::konst(1)).build().unwrap_err();
        assert_eq!(err, TxnError::UnreadVariable { var: v(0), program: "blind".into() });
    }

    #[test]
    fn unread_operand_rejected() {
        let err =
            ProgramBuilder::new("t").read(v(0)).update(v(0), Expr::var(v(1))).build().unwrap_err();
        assert_eq!(err, TxnError::UnreadVariable { var: v(1), program: "t".into() });
    }

    #[test]
    fn unread_guard_rejected() {
        let err = ProgramBuilder::new("t")
            .branch(Expr::var(v(5)).gt(Expr::konst(0)), |b| b, |b| b)
            .build()
            .unwrap_err();
        assert_eq!(err, TxnError::UnreadVariable { var: v(5), program: "t".into() });
    }

    #[test]
    fn duplicate_update_rejected() {
        let err = ProgramBuilder::new("t")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .update(v(0), Expr::var(v(0)) + Expr::konst(2))
            .build()
            .unwrap_err();
        assert_eq!(err, TxnError::DuplicateUpdate { var: v(0), program: "t".into() });
    }

    #[test]
    fn both_branches_may_update_same_item() {
        // Mirrors T1 of history H5: if y > 200 then x := x+100 else x := x*2.
        let p = ProgramBuilder::new("t1")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(1)).gt(Expr::konst(200)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(100)),
                |b| b.update(v(0), Expr::var(v(0)) * Expr::konst(2)),
            )
            .build()
            .unwrap();
        assert_eq!(p.writeset(), &[v(0)].into_iter().collect());
    }

    #[test]
    fn update_after_branch_update_rejected() {
        // If either branch updated x, a later unconditional update of x is a
        // duplicate on that path.
        let err = ProgramBuilder::new("t")
            .read(v(0))
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(1)),
                |b| b,
            )
            .update(v(0), Expr::var(v(0)) + Expr::konst(2))
            .build()
            .unwrap_err();
        assert!(matches!(err, TxnError::DuplicateUpdate { .. }));
    }

    #[test]
    fn read_inside_branch_not_available_after() {
        // v1 is only read in the then-branch, so it is not available after
        // the conditional.
        let err = ProgramBuilder::new("t")
            .read(v(0))
            .branch(Expr::var(v(0)).gt(Expr::konst(0)), |b| b.read(v(1)), |b| b)
            .update(v(0), Expr::var(v(1)))
            .build()
            .unwrap_err();
        assert!(matches!(err, TxnError::UnreadVariable { .. }));
    }

    #[test]
    fn branch_reads_counted_in_readset() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.read(v(1)).update(v(1), Expr::var(v(1)) + Expr::konst(1)),
                |b| b.read(v(2)).update(v(2), Expr::var(v(2)) - Expr::konst(1)),
            )
            .build()
            .unwrap();
        assert_eq!(p.readset(), &[v(0), v(1), v(2)].into_iter().collect());
        assert_eq!(p.writeset(), &[v(1), v(2)].into_iter().collect());
        assert!(p.writeset().is_subset(p.readset()));
    }

    #[test]
    fn update_makes_target_available() {
        // After x := x+1, x can be used as an operand (it was read earlier,
        // and updated values remain available).
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .read(v(1))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .update(v(1), Expr::var(v(0)) * Expr::konst(2))
            .build()
            .unwrap();
        assert_eq!(p.writeset().len(), 2);
    }

    #[test]
    fn statement_count_includes_nested() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(1)),
                |b| b.read(v(0)),
            )
            .build()
            .unwrap();
        // read + if + update + nested (no-op) read = 4.
        assert_eq!(p.statement_count(), 4);
    }

    #[test]
    fn blind_write_allowed_when_opted_in() {
        let p = ProgramBuilder::new("blind")
            .allow_blind_writes()
            .update(v(0), Expr::konst(7))
            .build()
            .unwrap();
        assert!(p.has_blind_writes());
        assert!(p.writeset().contains(v(0)));
        assert!(!p.readset().contains(v(0)));
    }

    #[test]
    fn blind_write_operands_must_still_be_read() {
        let err = ProgramBuilder::new("blind")
            .allow_blind_writes()
            .update(v(0), Expr::var(v(1)))
            .build()
            .unwrap_err();
        assert_eq!(err, TxnError::UnreadVariable { var: v(1), program: "blind".into() });
    }

    #[test]
    fn normal_programs_report_no_blind_writes() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap();
        assert!(!p.has_blind_writes());
    }

    #[test]
    fn footprint_and_masks_match_static_sets() {
        let p = ProgramBuilder::new("t")
            .read(v(0))
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.read(v(1)).update(v(1), Expr::var(v(1)) + Expr::konst(1)),
                |b| b.read(v(2)).update(v(2), Expr::var(v(2)) - Expr::konst(1)),
            )
            .build()
            .unwrap();
        assert_eq!(p.footprint(), &p.readset().union(p.writeset()));
        assert!(p.read_mask().contains(v(2)));
        assert!(!p.write_mask().contains(v(0)));
        assert!(p.read_mask().intersects(p.write_mask()));
    }

    #[test]
    fn sequenced_composite_equals_sequential_execution() {
        use crate::fix::Fix;
        // p1: x := x + p0 ;  p2: if x > p0 then y := y + x.
        let p1 = ProgramBuilder::new("p1")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::param(0))
            .build()
            .unwrap();
        let p2 = ProgramBuilder::new("p2")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(0)).gt(Expr::param(0)),
                |b| b.update(v(1), Expr::var(v(1)) + Expr::var(v(0))),
                |b| b,
            )
            .build()
            .unwrap();
        let seq = Program::sequenced("p1+p2", &[&p1, &p2]);
        assert_eq!(seq.n_params(), 2);
        assert_eq!(seq.readset(), &p1.readset().union(p2.readset()));
        assert_eq!(seq.writeset(), &p1.writeset().union(p2.writeset()));
        assert_eq!(seq.footprint(), &seq.readset().union(seq.writeset()));
        assert_eq!(seq.read_mask(), &VarMask::from_set(seq.readset()));
        assert_eq!(seq.write_mask(), &VarMask::from_set(seq.writeset()));

        let mut s = DbState::new();
        s.set(v(0), 5);
        s.set(v(1), 100);
        // Composite params = concat([10], [3]).
        let composed = seq.execute(&[10, 3], &s, &Fix::empty()).unwrap().after;
        let mid = p1.execute(&[10], &s, &Fix::empty()).unwrap().after;
        let sequential = p2.execute(&[3], &mid, &Fix::empty()).unwrap().after;
        assert_eq!(composed, sequential);
    }

    #[test]
    fn sequenced_tolerates_duplicate_updates_across_parts() {
        use crate::fix::Fix;
        // Two copies of the same increment: illegal in one builder-validated
        // program (duplicate update), legal as a composite.
        let inc = ProgramBuilder::new("inc")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap();
        let twice = Program::sequenced("inc;inc", &[&inc, &inc]);
        assert_eq!(twice.n_params(), 0);
        let s: DbState = [(v(0), 7)].into_iter().collect();
        assert_eq!(twice.execute(&[], &s, &Fix::empty()).unwrap().after.get(v(0)), 9);
        // The second copy observes the first copy's write, not the initial
        // state — exact sequential composition, not a parallel union.
        let dbl = ProgramBuilder::new("dbl")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) * Expr::konst(2))
            .build()
            .unwrap();
        let chain = Program::sequenced("inc;dbl", &[&inc, &dbl]);
        assert_eq!(chain.execute(&[], &s, &Fix::empty()).unwrap().after.get(v(0)), 16);
    }

    #[test]
    fn sequenced_with_offsets_supports_reversed_inverses() {
        use crate::fix::Fix;
        // add: x += p0 / scale: x *= p0 — inverses sub / (integer) unscale.
        let add = ProgramBuilder::new("add")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::param(0))
            .build()
            .unwrap();
        let sub = ProgramBuilder::new("sub")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) - Expr::param(0))
            .build()
            .unwrap();
        // Forward composite: add(p0); add(p1). Inverse runs the parts in
        // reverse order but keeps each part's forward parameter offset.
        let inv = Program::sequenced_with_offsets("inv", &[(&sub, 1), (&sub, 0)]);
        assert_eq!(inv.n_params(), 2);
        let fwd = Program::sequenced("fwd", &[&add, &add]);
        let s: DbState = [(v(0), 100)].into_iter().collect();
        let params = [7, 30];
        let after = fwd.execute(&params, &s, &Fix::empty()).unwrap().after;
        assert_eq!(after.get(v(0)), 137);
        assert_eq!(inv.execute(&params, &after, &Fix::empty()).unwrap().after, s);
    }

    #[test]
    fn display_renders_structure() {
        let p = ProgramBuilder::new("b1")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.update(v(1), Expr::var(v(1)) + Expr::konst(3)),
                |b| b,
            )
            .build()
            .unwrap();
        let text = p.to_string();
        assert!(text.contains("program b1"));
        assert!(text.contains("read d0"));
        assert!(text.contains("if d0 > 0 then"));
        assert!(text.contains("d1 := (d1 + 3)"));
    }
}
