//! Criterion bench: pruning approaches vs repaired-history re-execution
//! (E8).

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_core::prune::{compensate, undo};
use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::readsfrom::affected_set;
use histmerge_history::{AugmentedHistory, SerialHistory, TxnArena};
use histmerge_semantics::StaticAnalyzer;
use histmerge_txn::{DbState, VarId};
use histmerge_workload::canned::Bank;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_prune(c: &mut Criterion) {
    let oracle = StaticAnalyzer::new();
    let bank = Bank::new();
    let mut group = c.benchmark_group("prune");
    group.sample_size(20);
    for n in [50usize, 200] {
        let mut arena = TxnArena::new();
        let mut rng = StdRng::seed_from_u64(17);
        let mut bad = BTreeSet::new();
        let hm: SerialHistory = (0..n)
            .map(|i| {
                let acct = VarId::new(rng.gen_range(0..8));
                let amt = rng.gen_range(1..100);
                let id = arena.alloc(|id| bank.deposit(id, &format!("d{i}"), acct, amt));
                if rng.gen_bool(0.1) {
                    bad.insert(id);
                }
                id
            })
            .collect();
        let s0 = DbState::uniform(8, 1_000);
        let aug = AugmentedHistory::execute(&arena, &hm, &s0).unwrap();
        let ag = affected_set(&arena, &hm, &bad);
        let rw = rewrite(
            &arena,
            &aug,
            &bad,
            RewriteAlgorithm::CanFollowCanPrecede,
            FixMode::Lemma1,
            &oracle,
        );
        group.bench_with_input(BenchmarkId::new("undo", n), &n, |b, _| {
            b.iter(|| undo(&arena, &aug, &rw, &ag).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("compensate", n), &n, |b, _| {
            b.iter(|| compensate(&arena, &aug, &rw).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("reexecute", n), &n, |b, _| {
            b.iter(|| AugmentedHistory::execute(&arena, &rw.repaired_history(), &s0).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prune);
criterion_main!(benches);
