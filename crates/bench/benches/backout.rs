//! Criterion bench: back-out strategy cost on conflicting graphs (E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_history::backout::affected_weight;
use histmerge_history::{
    BackoutStrategy, ExactMinimum, GreedyScc, PrecedenceGraph, TwoCycleOptimal,
};
use histmerge_workload::generator::{generate, ScenarioParams};

fn bench_backout(c: &mut Criterion) {
    let mut group = c.benchmark_group("backout");
    group.sample_size(20);
    for hot_prob in [0.4f64, 0.8] {
        let params = ScenarioParams {
            n_vars: 40,
            n_tentative: 18,
            n_base: 12,
            commutative_fraction: 0.3,
            guarded_fraction: 0.2,
            read_only_fraction: 0.05,
            hot_fraction: 0.1,
            hot_prob,
            seed: 3,
            ..ScenarioParams::default()
        };
        let sc = generate(&params);
        let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
        let weight = affected_weight(&sc.arena, &sc.hm);
        let strategies: Vec<(&str, Box<dyn BackoutStrategy>)> = vec![
            ("exact", Box::new(ExactMinimum::new())),
            ("two-cycle", Box::new(TwoCycleOptimal::new())),
            ("greedy", Box::new(GreedyScc::new())),
        ];
        for (label, strategy) in &strategies {
            group.bench_with_input(
                BenchmarkId::new(*label, format!("hot{hot_prob}")),
                &hot_prob,
                |b, _| {
                    b.iter(|| strategy.compute(&graph, &weight).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backout);
criterion_main!(benches);
