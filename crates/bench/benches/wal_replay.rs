//! Criterion bench: WAL append overhead and recovery replay speed.
//!
//! Three measurements around `replication::{wal, recovery}`:
//!
//! * `run/plain` vs `run/durable` — the full simulation with and without
//!   write-ahead logging, pricing the append path (frame + CRC + copy)
//!   that every durable transition pays;
//! * `recover/*` — a full `recover()` from the end-of-run log at two
//!   checkpoint intervals: genesis-only (replay the whole run) and a
//!   64-record interval (replay only the tail past the last snapshot).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_replication::{
    recover, DurabilityConfig, FaultPlan, Protocol, SimConfig, Simulation, SyncPath, SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

fn config(durability: DurabilityConfig) -> SimConfig {
    SimConfig {
        n_mobiles: 4,
        duration: 300,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.08,
            hot_prob: 0.6,
            seed: 7,
            ..ScenarioParams::default()
        },
        sync_path: SyncPath::Session,
        fault: FaultPlan::none(),
        durability,
        ..SimConfig::default()
    }
}

fn bench_wal_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_replay");
    group.sample_size(10);

    let durable_cfgs = [
        ("genesis-ckpt", DurabilityConfig { enabled: true, checkpoint_every: 0 }),
        ("ckpt-64", DurabilityConfig { enabled: true, checkpoint_every: 64 }),
    ];

    // Sanity: logging is observation-only.
    let plain =
        Simulation::new(config(DurabilityConfig::default())).expect("valid sim config").run();
    let durable = Simulation::new(config(durable_cfgs[1].1)).expect("valid sim config").run();
    assert_eq!(plain.final_master, durable.final_master);
    assert_eq!(plain.metrics.normalized(), durable.metrics.normalized());

    // The simulation with and without the WAL append path.
    group.bench_with_input(BenchmarkId::new("run", "plain"), &(), |b, ()| {
        b.iter(|| {
            black_box(
                Simulation::new(config(DurabilityConfig::default()))
                    .expect("valid sim config")
                    .run(),
            )
        });
    });
    group.bench_with_input(BenchmarkId::new("run", "durable"), &(), |b, ()| {
        b.iter(|| {
            black_box(Simulation::new(config(durable_cfgs[1].1)).expect("valid sim config").run())
        });
    });

    // Recovery replay: whole-run tail vs checkpoint-bounded tail.
    for (label, durability) in durable_cfgs {
        let report = Simulation::new(config(durability)).expect("valid sim config").run();
        let artifacts = report.durable.expect("durability enabled");
        group.bench_with_input(BenchmarkId::new("recover", label), &artifacts, |b, d| {
            b.iter(|| black_box(recover(&d.arena, &d.storage).expect("recovers")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wal_replay);
criterion_main!(benches);
