//! Criterion bench: the session sync path vs the legacy handshake.
//!
//! Times the full simulation three ways — legacy atomic handshake,
//! resumable sessions with `FaultPlan::none()`, and resumable sessions at
//! a 10% uniform fault rate. The first two should be indistinguishable
//! (the fault-free session path is the same plan/apply pipeline plus a
//! ledger insert per sync); the third prices the recovery machinery
//! (retries, ledger resumes, re-offered sessions).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_replication::{
    FaultPlan, FaultRates, Protocol, SimConfig, Simulation, SyncPath, SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

fn config(sync_path: SyncPath, fault: FaultPlan) -> SimConfig {
    SimConfig {
        n_mobiles: 4,
        duration: 300,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.08,
            hot_prob: 0.6,
            seed: 7,
            ..ScenarioParams::default()
        },
        sync_path,
        fault,
        ..SimConfig::default()
    }
}

fn bench_fault_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_path");
    group.sample_size(10);

    // Sanity: fault-free sessions reproduce the legacy run.
    let legacy = Simulation::new(config(SyncPath::Legacy, FaultPlan::none()))
        .expect("valid sim config")
        .run();
    let session = Simulation::new(config(SyncPath::Session, FaultPlan::none()))
        .expect("valid sim config")
        .run();
    assert_eq!(legacy.final_master, session.final_master);
    assert_eq!(legacy.metrics.normalized(), session.metrics.normalized());

    let variants = [
        ("legacy", SyncPath::Legacy, FaultPlan::none()),
        ("session-fault-free", SyncPath::Session, FaultPlan::none()),
        ("session-10pct-faults", SyncPath::Session, FaultPlan::seeded(7, FaultRates::uniform(0.1))),
    ];
    for (label, path, fault) in variants {
        group.bench_with_input(BenchmarkId::new("run", label), &(path, fault), |b, &(p, f)| {
            b.iter(|| black_box(Simulation::new(config(p, f)).expect("valid sim config").run()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_path);
criterion_main!(benches);
