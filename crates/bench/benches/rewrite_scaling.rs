//! Criterion bench: rewriting cost vs tentative-history length (E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::backout::affected_weight;
use histmerge_history::{AugmentedHistory, BackoutStrategy, PrecedenceGraph, TwoCycleOptimal};
use histmerge_semantics::StaticAnalyzer;
use histmerge_workload::generator::{generate, ScenarioParams};

fn bench_rewrite(c: &mut Criterion) {
    let oracle = StaticAnalyzer::new();
    let mut group = c.benchmark_group("rewrite");
    group.sample_size(20);
    for n in [25usize, 50, 100, 200] {
        let params = ScenarioParams {
            n_vars: 128,
            n_tentative: n,
            n_base: n / 2,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.05,
            hot_fraction: 0.05,
            hot_prob: 0.3,
            seed: 11,
            ..ScenarioParams::default()
        };
        let sc = generate(&params);
        let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
        let weight = affected_weight(&sc.arena, &sc.hm);
        let bad = TwoCycleOptimal::new().compute(&graph, &weight).unwrap();
        let aug = AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap();
        for (label, alg) in [
            ("alg1", RewriteAlgorithm::CanFollow),
            ("alg2", RewriteAlgorithm::CanFollowCanPrecede),
            ("cbtr", RewriteAlgorithm::CommutesBackward),
            ("rftc", RewriteAlgorithm::ReadsFromClosure),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| rewrite(&sc.arena, &aug, &bad, alg, FixMode::Lemma1, &oracle));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
