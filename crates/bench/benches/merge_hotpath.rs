//! Criterion bench: the hot-path data layout kernels — footprint-bitset
//! conflicts vs `VarSet` intersections, closure-table weights vs per-query
//! scans, copy-on-write execution vs clone-per-step, and the full merge
//! with and without a reused [`MergeScratch`].

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_core::merge::{MergeConfig, MergeScratch, Merger};
use histmerge_history::{run_to_final, AugmentedHistory, ClosureTable};
use histmerge_txn::{Fix, TxnId};
use histmerge_workload::generator::{generate, Scenario, ScenarioParams};

fn scenario(n: usize) -> Scenario {
    generate(&ScenarioParams {
        n_vars: 512,
        n_tentative: n,
        n_base: n / 2,
        commutative_fraction: 0.6,
        guarded_fraction: 0.1,
        read_only_fraction: 0.05,
        hot_fraction: 0.08,
        hot_prob: 0.2,
        seed: 42,
        ..ScenarioParams::default()
    })
}

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_hotpath");
    group.sample_size(20);

    for n in [60usize, 240] {
        let sc = scenario(n);
        let ids: Vec<TxnId> = sc.hm.iter().chain(sc.hb.iter()).collect();

        group.bench_with_input(BenchmarkId::new("conflicts/varset", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..ids.len() {
                    for j in (i + 1)..ids.len() {
                        let (a, t) = (sc.arena.get(ids[i]), sc.arena.get(ids[j]));
                        if a.readset().intersects(t.writeset())
                            || a.writeset().intersects(t.readset())
                            || a.writeset().intersects(t.writeset())
                        {
                            hits += 1;
                        }
                    }
                }
                black_box(hits)
            });
        });
        group.bench_with_input(BenchmarkId::new("conflicts/bitset", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..ids.len() {
                    for j in (i + 1)..ids.len() {
                        if sc.arena.conflicts(ids[i], ids[j]) {
                            hits += 1;
                        }
                    }
                }
                black_box(hits)
            });
        });

        group.bench_with_input(BenchmarkId::new("execute/clone_per_step", n), &n, |b, _| {
            b.iter(|| {
                let mut state = sc.s0.clone();
                let mut states = vec![state.clone()];
                for id in sc.hm.iter() {
                    let out = sc.arena.get(id).execute(&state, &Fix::empty()).unwrap();
                    state = out.after;
                    states.push(state.clone());
                }
                black_box(states.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("execute/cow_log", n), &n, |b, _| {
            b.iter(|| {
                black_box(AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("execute/run_to_final", n), &n, |b, _| {
            b.iter(|| black_box(run_to_final(&sc.arena, &sc.hm, &sc.s0).unwrap()));
        });

        group.bench_with_input(BenchmarkId::new("closure/table", n), &n, |b, _| {
            b.iter(|| black_box(ClosureTable::build(&sc.arena, &sc.hm).weights()));
        });

        let merger = Merger::new(MergeConfig::default());
        group.bench_with_input(BenchmarkId::new("merge/fresh", n), &n, |b, _| {
            b.iter(|| black_box(merger.merge(&sc.arena, &sc.hm, &sc.hb, &sc.s0).unwrap()));
        });
        let mut scratch = MergeScratch::new();
        group.bench_with_input(BenchmarkId::new("merge/scratch", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    merger
                        .merge_scratch(
                            &sc.arena,
                            &sc.hm,
                            &sc.hb,
                            &sc.s0,
                            Default::default(),
                            &mut scratch,
                        )
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
