//! Criterion bench: the end-to-end merging protocol (steps 1–6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_core::merge::{MergeConfig, Merger};
use histmerge_history::fixtures::example1;
use histmerge_workload::generator::{generate, ScenarioParams};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_pipeline");
    group.sample_size(20);

    // The paper's Example 1 (6 transactions).
    let ex = example1();
    group.bench_function("example1", |b| {
        b.iter(|| {
            Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap()
        });
    });

    // Generated merges of increasing size.
    for n in [20usize, 60, 120] {
        let sc = generate(&ScenarioParams {
            n_vars: 96,
            n_tentative: n,
            n_base: n / 2,
            commutative_fraction: 0.5,
            guarded_fraction: 0.15,
            read_only_fraction: 0.05,
            hot_fraction: 0.08,
            hot_prob: 0.4,
            seed: 23,
            ..ScenarioParams::default()
        });
        group.bench_with_input(BenchmarkId::new("generated", n), &n, |b, _| {
            b.iter(|| {
                Merger::new(MergeConfig::default())
                    .merge(&sc.arena, &sc.hm, &sc.hb, &sc.s0)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
