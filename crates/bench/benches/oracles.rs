//! Criterion bench: semantic-relation detection cost per back-end
//! (Section 5.1's detection discussion — canned table vs static analysis
//! vs repair-time differential testing).

use criterion::{criterion_group, criterion_main, Criterion};

use histmerge_semantics::{RandomizedTester, SemanticOracle, StaticAnalyzer};
use histmerge_txn::{TxnId, VarId, VarSet};
use histmerge_workload::canned::Bank;

fn bench_oracles(c: &mut Criterion) {
    let bank = Bank::new();
    let acct = VarId::new(0);
    let d1 = bank.deposit(TxnId::new(0), "d1", acct, 10);
    let d2 = bank.deposit(TxnId::new(1), "d2", acct, 25);
    let w = bank.withdraw(TxnId::new(2), "w", acct, 40);
    let table = bank.declared_relations();
    let analyzer = StaticAnalyzer::new();
    let tester = RandomizedTester::new();
    let fix = VarSet::new();

    let mut group = c.benchmark_group("oracles");
    group.bench_function("declared-table", |b| {
        b.iter(|| (table.commutes_backward_through(&d1, &d2), table.can_precede(&d1, &w, &fix)));
    });
    group.bench_function("static-analyzer", |b| {
        b.iter(|| {
            (analyzer.commutes_backward_through(&d1, &d2), analyzer.can_precede(&d1, &w, &fix))
        });
    });
    group.bench_function("randomized-tester-64", |b| {
        b.iter(|| (tester.commutes_backward_through(&d1, &d2), tester.can_precede(&d1, &w, &fix)));
    });
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
