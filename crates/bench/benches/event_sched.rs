//! Criterion bench: the event-driven scheduler vs the legacy per-tick
//! fleet scan, on a fleet large enough that scanning dominates.
//!
//! The configuration is sparse on purpose — low generation rate, long
//! reconnect cadence — so most ticks have *no* due work. That is the
//! regime the scheduler targets: the tick-scan pays O(fleet) twice per
//! tick regardless, while the event queue pays O(due events). The
//! outcomes are asserted byte-identical before timing (the same pin as
//! `tests/session_differential.rs`, at bench scale).

use criterion::{criterion_group, criterion_main, Criterion};

use histmerge_replication::{Protocol, SchedulerMode, SimConfig, Simulation, SyncStrategy};
use histmerge_workload::generator::ScenarioParams;

fn config(scheduler: SchedulerMode) -> SimConfig {
    SimConfig {
        n_mobiles: 2_000,
        duration: 400,
        base_rate: 0.2,
        mobile_rate: 0.004,
        connect_every: 120,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::AdaptiveWindow { max_hb: 64 },
        workload: ScenarioParams { n_vars: 128, seed: 23, ..ScenarioParams::default() },
        base_capacity: 5_000.0,
        lean_base_log: true,
        backlog_sample_every: 0,
        scheduler,
        ..SimConfig::default()
    }
}

fn bench_event_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_sched");
    group.sample_size(10);

    // Sanity: the scheduler is pure mechanism.
    let scan = Simulation::new(config(SchedulerMode::TickScan)).expect("valid config").run();
    let queue = Simulation::new(config(SchedulerMode::EventQueue)).expect("valid config").run();
    assert_eq!(scan.final_master, queue.final_master);
    assert_eq!(scan.metrics.normalized(), queue.metrics.normalized());
    assert_eq!(queue.metrics.sched.fleet_scans, 0);

    for (name, scheduler) in
        [("tick_scan", SchedulerMode::TickScan), ("event_queue", SchedulerMode::EventQueue)]
    {
        group.bench_function(name, |b| {
            b.iter(|| Simulation::new(config(scheduler)).expect("valid config").run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_sched);
criterion_main!(benches);
