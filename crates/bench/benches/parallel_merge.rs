//! Criterion bench: the batched base-tier merge pipeline, serial vs
//! parallel worker pools.
//!
//! Eight mobiles reconnect in the same tick; each brings its own slice of
//! a generated tentative workload and merges against the shared
//! window-start state. The serial/parallel outcomes are asserted equal
//! once up front, then each worker count is timed. On a multi-core host
//! the 4- and 8-worker rows should beat `workers=1` by well over 1.5x;
//! on a single CPU they only measure pool overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use histmerge_core::merge::{MergeConfig, Merger};
use histmerge_history::{AugmentedHistory, BaseEdgeCache, SerialHistory};
use histmerge_replication::{merge_batch, BatchJob};
use histmerge_workload::generator::{generate, ScenarioParams};

const MOBILES: usize = 8;
const PER_MOBILE: usize = 40;

fn bench_parallel_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_merge");
    group.sample_size(10);

    // One arena, one base history, eight disjoint tentative slices — the
    // exact shape `Simulation::speculate_batch` hands to `merge_batch`.
    let sc = generate(&ScenarioParams {
        n_vars: 256,
        n_tentative: MOBILES * PER_MOBILE,
        n_base: 60,
        commutative_fraction: 0.5,
        guarded_fraction: 0.1,
        read_only_fraction: 0.05,
        hot_fraction: 0.05,
        hot_prob: 0.2,
        seed: 77,
        ..ScenarioParams::default()
    });
    let jobs: Vec<BatchJob> = sc
        .hm
        .order()
        .chunks(PER_MOBILE)
        .enumerate()
        .map(|(mobile, chunk)| BatchJob {
            mobile,
            hm: SerialHistory::from_order(chunk.iter().copied()),
        })
        .collect();
    let mut cache = BaseEdgeCache::new();
    cache.sync(&sc.arena, &sc.hb);
    let hb_final =
        AugmentedHistory::execute(&sc.arena, &sc.hb, &sc.s0).unwrap().final_state().clone();
    let make = || Merger::new(MergeConfig::default());

    // Sanity: the pool changes wall-clock only, never results.
    let serial = merge_batch(&sc.arena, &jobs, &sc.hb, &sc.s0, &hb_final, &cache, &make, 1);
    let pooled = merge_batch(&sc.arena, &jobs, &sc.hb, &sc.s0, &hb_final, &cache, &make, 4);
    for (s, p) in serial.iter().zip(pooled.iter()) {
        let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
        assert_eq!(s.saved, p.saved);
        assert_eq!(s.new_master, p.new_master);
    }

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(merge_batch(
                    &sc.arena, &jobs, &sc.hb, &sc.s0, &hb_final, &cache, &make, w,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_merge);
criterion_main!(benches);
