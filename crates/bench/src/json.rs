//! A minimal JSON reader for experiment artifacts.
//!
//! The vendored `serde` is a no-op stub (the build environment has no
//! registry access), and the artifact *writer* in this crate
//! ([`crate::artifact_json`]) is hand-rolled string assembly. The
//! trajectory gate (`src/bin/bench_trajectory.rs`) needs the other
//! direction — reading a committed `BENCH_*.json` baseline back — so this
//! module implements a small recursive-descent parser for the full JSON
//! grammar, plus helpers for walking the
//! `{"experiment": .., "tables": {name: [{col: val}]}}` artifact shape.
//!
//! Object member order is preserved (members are a `Vec`, not a map):
//! artifact rows put their key column first, and the trajectory gate
//! relies on that to label rows.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonVal>),
    /// An object, in source member order.
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonVal> {
        match self {
            JsonVal::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonVal]> {
        match self {
            JsonVal::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonVal)]> {
        match self {
            JsonVal::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a metric cell into a number. Artifact tables store every cell as
/// a string, and some carry a unit suffix (`"3.4x"` speedups, `"85%"`
/// ratios); this strips one trailing `x` or `%` before parsing.
pub fn metric_number(cell: &str) -> Option<f64> {
    let trimmed = cell.trim();
    let trimmed =
        trimmed.strip_suffix('x').or_else(|| trimmed.strip_suffix('%')).unwrap_or(trimmed);
    trimmed.parse::<f64>().ok()
}

/// Parses a JSON document. Errors carry the byte offset of the problem.
pub fn parse(input: &str) -> Result<JsonVal, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonVal) -> Result<JsonVal, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonVal::Bool(true)),
            Some(b'f') => self.literal("false", JsonVal::Bool(false)),
            Some(b'n') => self.literal("null", JsonVal::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonVal, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonVal::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonVal::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonVal::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonVal::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates never appear in the ASCII-ish
                            // artifacts this reads; map them to U+FFFD
                            // rather than implementing pairing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe to find).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&rest[..len]).map_err(|_| "bad UTF-8")?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonVal, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonVal::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{artifact_json, Table};

    #[test]
    fn parses_scalars_arrays_and_nesting() {
        assert_eq!(parse("null").unwrap(), JsonVal::Null);
        assert_eq!(parse(" true ").unwrap(), JsonVal::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), JsonVal::Num(-1250.0));
        let doc = parse(r#"{"a":[1,{"b":"x"},false],"c":null}"#).unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c"), Some(&JsonVal::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn member_order_is_preserved() {
        let doc = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = doc.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse(r#""a \"q\" \n \t \\ A""#).unwrap();
        assert_eq!(doc.as_str(), Some("a \"q\" \n \t \\ A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn reads_back_the_writer_shape() {
        let mut t = Table::new(&["fleet", "merges_per_sec"]);
        t.row(&["10000", "123.4"]);
        t.row(&["100000", "98.7"]);
        let doc = parse(&artifact_json("exp_scale", &[("scale", &t)])).unwrap();
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("exp_scale"));
        let rows = doc.get("tables").unwrap().get("scale").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        // The key column is the first member of every row object.
        assert_eq!(rows[0].as_obj().unwrap()[0].0, "fleet");
        assert_eq!(rows[1].get("merges_per_sec").unwrap().as_str(), Some("98.7"));
    }

    #[test]
    fn metric_numbers_strip_unit_suffixes() {
        assert_eq!(metric_number("3.4x"), Some(3.4));
        assert_eq!(metric_number("85%"), Some(85.0));
        assert_eq!(metric_number(" 42 "), Some(42.0));
        assert_eq!(metric_number("n/a"), None);
    }
}
