//! `obs_report` — renders a flight-recorder dump plus a time-series
//! dump into one self-contained HTML file.
//!
//! The simulator's telemetry artifacts are plain text: a JSONL event
//! trace (`TracerHandle::dump_jsonl` / `dump_to_dir`), a bounded
//! time-series dump (`TimeSeries::to_json`), and optionally the pinned
//! metrics JSON and a registry snapshot. This bin stitches them into
//! the single-file report `histmerge_obs::export::html_report` builds:
//! no server, no network, open it from disk. Autopsy event runs
//! (`backout_edge`/`reprocess_cause` closed by a `merge_summary`) are
//! reassembled here the same way the flight recorder does it in
//! memory, so a dump pulled off CI explains its casualties too.
//!
//! Every input line is validated before it is embedded; a malformed
//! trace fails the run rather than producing a silently broken report.
//!
//! Usage:
//!
//! ```text
//! obs_report --trace run.jsonl --timeseries ts.json \
//!     [--metrics metrics.json] [--registry registry.json] \
//!     [--label storm-150] [--out report.html]
//! ```

use std::process::exit;

use histmerge_bench::json::{parse, JsonVal};
use histmerge_obs::{export, validate_json_line, NO_PARTNER};

fn usage() -> ! {
    eprintln!(
        "usage: obs_report --trace <events.jsonl> --timeseries <series.json> \
         [--metrics <metrics.json>] [--registry <registry.json>] \
         [--label <name>] [--out <report.html>]"
    );
    exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("obs_report: {message}");
    exit(2);
}

struct Args {
    trace: String,
    timeseries: String,
    metrics: Option<String>,
    registry: Option<String>,
    label: Option<String>,
    out: String,
}

fn parse_args() -> Args {
    let mut trace = None;
    let mut timeseries = None;
    let mut metrics = None;
    let mut registry = None;
    let mut label = None;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--trace" => trace = Some(value()),
            "--timeseries" => timeseries = Some(value()),
            "--metrics" => metrics = Some(value()),
            "--registry" => registry = Some(value()),
            "--label" => label = Some(value()),
            "--out" => out = Some(value()),
            _ => usage(),
        }
    }
    let (Some(trace), Some(timeseries)) = (trace, timeseries) else {
        usage();
    };
    Args {
        trace,
        timeseries,
        metrics,
        registry,
        label,
        out: out.unwrap_or_else(|| "report.html".into()),
    }
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

/// Reads and validates a single-object JSON file, returning it verbatim
/// for embedding.
fn read_object(path: &str) -> String {
    let body = read(path);
    let trimmed = body.trim();
    validate_json_line(trimmed)
        .unwrap_or_else(|e| fail(&format!("{path} is not a valid JSON object: {e}")));
    trimmed.to_string()
}

fn field_u64(event: &JsonVal, key: &str) -> u64 {
    match event.get(key) {
        Some(JsonVal::Num(n)) => *n as u64,
        _ => fail(&format!("trace event is missing numeric field {key:?}")),
    }
}

fn field_str<'a>(event: &'a JsonVal, key: &str) -> &'a str {
    match event.get(key).and_then(JsonVal::as_str) {
        Some(s) => s,
        None => fail(&format!("trace event is missing string field {key:?}")),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_num(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

/// Renders one autopsy edge from a parsed `backout_edge` or
/// `reprocess_cause` event, in the exact shape `MergeAutopsy::to_json`
/// uses (so reports built from dumps match reports built in memory).
fn render_edge(event: &JsonVal, cause: &str, weight: u64) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"txn\":");
    out.push_str(&field_u64(event, "txn").to_string());
    out.push_str(",\"cause\":");
    push_json_str(&mut out, cause);
    out.push_str(",\"lost_to\":");
    let lost_to = field_u64(event, "lost_to");
    if lost_to == NO_PARTNER {
        out.push_str("null");
    } else {
        out.push_str(&lost_to.to_string());
    }
    out.push_str(",\"rule\":");
    push_json_str(&mut out, field_str(event, "rule"));
    push_num(&mut out, "txn_mask", field_u64(event, "txn_mask"));
    push_num(&mut out, "other_mask", field_u64(event, "other_mask"));
    push_num(&mut out, "weight", weight);
    out.push('}');
    out
}

/// Reassembles autopsy event runs the way the flight recorder does:
/// edges accumulate until a `merge_summary` closes them into one
/// autopsy object. Returns the rendered JSON array.
fn assemble_autopsies(events: &[JsonVal]) -> String {
    let mut autopsies: Vec<String> = Vec::new();
    let mut pending_edges: Vec<String> = Vec::new();
    for event in events {
        match field_str(event, "type") {
            "backout_edge" => {
                let weight = field_u64(event, "weight");
                pending_edges.push(render_edge(event, "backed-out", weight));
            }
            "reprocess_cause" => {
                let cause = field_str(event, "cause").to_string();
                pending_edges.push(render_edge(event, &cause, 0));
            }
            "merge_summary" => {
                let mut out = String::with_capacity(128);
                out.push_str("{\"tick\":");
                out.push_str(&field_u64(event, "tick").to_string());
                for key in [
                    "mobile",
                    "pending",
                    "saved",
                    "backed_out",
                    "reprocessed",
                    "clusters",
                    "squashed",
                    "plan_ns",
                ] {
                    push_num(&mut out, key, field_u64(event, key));
                }
                out.push_str(",\"edges\":[");
                out.push_str(&std::mem::take(&mut pending_edges).join(","));
                out.push_str("]}");
                autopsies.push(out);
            }
            _ => {}
        }
    }
    format!("[{}]", autopsies.join(","))
}

fn main() {
    let args = parse_args();

    // The trace: every line validated, then parsed for reassembly and
    // embedded verbatim as the report's event tail.
    let trace_body = read(&args.trace);
    let mut lines: Vec<&str> = Vec::new();
    let mut events: Vec<JsonVal> = Vec::new();
    for (i, line) in trace_body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json_line(line).unwrap_or_else(|e| {
            fail(&format!("{}:{}: invalid trace line: {e}", args.trace, i + 1))
        });
        let event = parse(line).unwrap_or_else(|e| fail(&format!("{}:{}: {e}", args.trace, i + 1)));
        lines.push(line);
        events.push(event);
    }

    let timeseries = read_object(&args.timeseries);
    let metrics = args.metrics.as_deref().map(read_object);
    let registry = args.registry.as_deref().map(read_object);
    let label = args.label.clone().unwrap_or_else(|| {
        std::path::Path::new(&args.trace)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "run".into())
    });

    // The data blob `export::html_report` embeds; key order mirrors the
    // shape its chart code reads.
    let mut blob = String::with_capacity(trace_body.len() + timeseries.len() + 1024);
    blob.push_str("{\"label\":");
    push_json_str(&mut blob, &label);
    blob.push_str(",\"timeseries\":");
    blob.push_str(&timeseries);
    blob.push_str(",\"registry\":");
    blob.push_str(registry.as_deref().unwrap_or("null"));
    blob.push_str(",\"metrics\":");
    blob.push_str(metrics.as_deref().unwrap_or("null"));
    blob.push_str(",\"autopsies\":");
    blob.push_str(&assemble_autopsies(&events));
    blob.push_str(",\"events\":[");
    blob.push_str(&lines.join(","));
    blob.push_str("]}");

    let html = export::html_report(&format!("histmerge run report — {label}"), &blob);
    std::fs::write(&args.out, html)
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out)));
    println!(
        "{}: {} events, {} autopsies embedded",
        args.out,
        events.len(),
        assemble_autopsies(&events).matches("\"tick\":").count()
    );
}
