//! E23 — the cohort install pipeline: killing the quadratic same-tick
//! install cost.
//!
//! E19's honest finding (and E21's storm corollary) was that under the
//! merging protocol a same-tick reconnect cohort pays quadratically for
//! its own installs: every member's install appends base transactions
//! that invalidate later members' speculative merges, and each
//! invalidated member re-pays a serial live merge against the grown
//! epoch history. PR 10 restructures that pipeline — incremental epoch
//! edge maintenance (the cache appends each install's suffix instead of
//! re-walking the epoch), bounded **wave re-speculation** (the still
//! pending stale remainder re-merges concurrently against a refreshed
//! snapshot), the **mask-disjoint fast path** (a pending history whose
//! footprint is disjoint from the whole concurrent base slice skips
//! precedence-graph construction wholesale), and **deferred witness
//! materialization** (the slow path stops paying a per-merge O(|H|²)
//! topological sort for a Theorem-1 witness history the install
//! pipeline never reads).
//!
//! Two tables:
//!
//! * `cohort` — E19's `merge_regime` sweep extended to cohort sizes
//!   64 / 256 / 1024, each run A/B: the legacy pipeline
//!   ([`CohortConfig::legacy`], exactly the pre-PR install path) against
//!   the tuned one ([`CohortConfig::tuned`]). Byte-identity of the two
//!   arms is asserted **in-run** (final master, commit log, every sync
//!   record, normalized metrics) — the speedup is pure mechanism.
//! * `herd` — E21's uncapped storm-herd cell (the o60 outage whose
//!   slid cohort approaches the whole fleet), re-run under both arms on
//!   the session path with retry backoff, to show the tuned pipeline
//!   pays the herd's bill too.
//!
//! Acceptance bars, asserted below: the tuned 256-member cohort row
//! clears 3x the legacy throughput; the legacy 256→1024 wall-clock
//! growth is super-linear while the tuned curve is strictly flatter
//! with an advantage that widens with cohort size (~5x at 1024); the
//! tuned herd cell is measurably faster than the legacy herd.
//!
//! `EXP_COHORT_SMOKE=1` drops the 1024-member row and shortens the herd
//! outage — CI's `bench-trajectory` job runs that mode on every PR and
//! gates on the emitted `BENCH_cohort.json` (see `bench_trajectory`).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_cohort`

use histmerge_bench::{artifact_json, fmt, timed, write_artifact, Table};
use histmerge_replication::{
    AdmissionConfig, CohortConfig, ConnectivityModel, Parallelism, Protocol, RetryBackoff,
    SchedulerMode, SimConfig, SimReport, Simulation, SyncPath, SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

/// E19's `merge_config` with the worker count pinned: synchronized
/// reconnects turn every cadence tick into a fleet-sized batch, and the
/// window rollover at tick 100 forces a reprocessing share.
fn cohort_config(fleet: usize, cohort: CohortConfig) -> SimConfig {
    SimConfig {
        n_mobiles: fleet,
        duration: 200,
        base_rate: 0.2,
        mobile_rate: 0.05,
        connect_every: 25,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 100 },
        workload: ScenarioParams {
            n_vars: 256,
            commutative_fraction: 0.7,
            guarded_fraction: 0.1,
            read_only_fraction: 0.1,
            hot_fraction: 0.05,
            hot_prob: 0.05,
            seed: 1906,
            ..ScenarioParams::default()
        },
        base_capacity: 10_000.0,
        // Pinned (not `Auto`) so the speculative phase engages with the
        // same worker count on any host, single-core CI included; both
        // arms run under the identical setting, so the A/B stays fair.
        parallelism: Parallelism::Threads(4),
        synchronized_reconnects: true,
        scheduler: SchedulerMode::EventQueue,
        lean_base_log: true,
        backlog_sample_every: 0,
        cohort,
        ..SimConfig::default()
    }
}

/// E21's uncapped storm cell, verbatim: a fleet-wide outage slides every
/// reconnect to the first up tick, and the herd merges uncapped.
fn herd_config(fleet: usize, outage: u64, cohort: CohortConfig) -> SimConfig {
    SimConfig {
        n_mobiles: fleet,
        duration: 600,
        base_rate: 0.2,
        mobile_rate: 0.05,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 192,
            commutative_fraction: 0.7,
            guarded_fraction: 0.1,
            read_only_fraction: 0.1,
            hot_fraction: 0.05,
            hot_prob: 0.1,
            seed: 2108,
            ..ScenarioParams::default()
        },
        base_capacity: 10_000.0,
        sync_path: SyncPath::Session,
        scheduler: SchedulerMode::EventQueue,
        backlog_sample_every: 0,
        connectivity: ConnectivityModel::OutageStorm {
            start: 100,
            outage_ticks: outage,
            surge_ticks: 40,
            fault_boost: 1.0,
        },
        admission: AdmissionConfig::unbounded(),
        check_convergence: true,
        cohort,
        ..SimConfig::default()
    }
}

/// Min-of-`reps` wall clock, the E18/E19/E21 discipline: deterministic
/// runs, identical reports, only the timing varies.
fn run(config: SimConfig, reps: usize) -> (SimReport, f64) {
    let mut best: Option<(SimReport, f64)> = None;
    for _ in 0..reps {
        let (report, ms) =
            timed(|| Simulation::new(config.clone()).expect("valid sim config").run());
        if best.as_ref().is_none_or(|(_, b)| ms < *b) {
            best = Some((report, ms));
        }
    }
    best.expect("at least one rep ran")
}

/// The in-run byte-identity bar: the tuned arm must reproduce the legacy
/// arm on everything the normalization contract keeps — committed state,
/// commit counts, every per-sync record, and all non-mechanism counters.
fn assert_identical(legacy: &SimReport, tuned: &SimReport, label: &str) {
    assert_eq!(legacy.final_master, tuned.final_master, "{label}: master state diverged");
    assert_eq!(legacy.base_commits, tuned.base_commits, "{label}: commit count diverged");
    assert_eq!(legacy.cluster, tuned.cluster, "{label}: cluster stats diverged");
    assert_eq!(legacy.metrics.records, tuned.metrics.records, "{label}: sync records diverged");
    assert_eq!(
        legacy.metrics.normalized(),
        tuned.metrics.normalized(),
        "{label}: metrics diverged"
    );
}

fn main() {
    let smoke = std::env::var_os("EXP_COHORT_SMOKE").is_some();
    let fleets: &[usize] = if smoke { &[64, 256] } else { &[64, 256, 1024] };
    let reps = if smoke { 1 } else { 2 };

    println!(
        "E23: the cohort install pipeline — waves + mask-disjoint fast path{}\n",
        if smoke { " (smoke mode: 1024 row skipped)" } else { "" }
    );

    let mut cohort = Table::new(&[
        "mobiles",
        "syncs",
        "saved",
        "save_ratio",
        "batch_max",
        "wave_rounds",
        "fastpath",
        "legacy_ms",
        "tuned_ms",
        "speedup",
        "merges_per_sec",
    ]);
    let mut legacy_wall = Vec::new();
    let mut tuned_wall = Vec::new();
    let mut speedups = Vec::new();
    for &fleet in fleets {
        // The 1024-row legacy arm is minutes of wall on its own; one rep
        // suffices for a 5x signal (min-of-reps matters at millisecond
        // scale, not there).
        let row_reps = if fleet >= 1024 { 1 } else { reps };
        let (legacy, legacy_ms) = run(cohort_config(fleet, CohortConfig::legacy()), row_reps);
        let (tuned, tuned_ms) = run(cohort_config(fleet, CohortConfig::tuned()), row_reps);
        eprintln!(
            "  [x{fleet}] legacy {legacy_ms:.0} ms (pmerge {:.0} ms, retries {}), \
             tuned {tuned_ms:.0} ms (pmerge {:.0} ms, waves {})",
            legacy.metrics.parallel_merge_ns as f64 / 1e6,
            legacy.metrics.speculative_retries,
            tuned.metrics.parallel_merge_ns as f64 / 1e6,
            tuned.metrics.cohort.wave_rounds,
        );
        assert_identical(&legacy, &tuned, &format!("cohort x{fleet}"));
        let m = &tuned.metrics;
        assert!(m.saved > 0, "merging never engaged at {fleet} mobiles");
        assert!(
            m.cohort.wave_rounds > 0 || m.speculative_retries == 0,
            "x{fleet}: invalidations occurred but no wave ever ran"
        );
        assert_eq!(legacy.metrics.cohort.wave_rounds, 0, "legacy arm ran a wave");
        assert_eq!(legacy.metrics.cohort.fastpath_merges, 0, "legacy arm took the fast path");
        let speedup = legacy_ms / tuned_ms;
        legacy_wall.push(legacy_ms);
        tuned_wall.push(tuned_ms);
        speedups.push(speedup);
        cohort.row_owned(vec![
            fleet.to_string(),
            m.syncs.to_string(),
            m.saved.to_string(),
            fmt(m.save_ratio(), 3),
            m.batch_sizes.iter().max().copied().unwrap_or(0).to_string(),
            m.cohort.wave_rounds.to_string(),
            m.cohort.fastpath_merges.to_string(),
            fmt(legacy_ms, 0),
            fmt(tuned_ms, 0),
            fmt(speedup, 2),
            fmt(m.syncs as f64 / (tuned_ms / 1e3), 1),
        ]);
    }
    cohort.print();

    // Acceptance bar 1: the 256-member cohort row (index 1 in both
    // modes) clears 3x the legacy install path.
    assert!(
        speedups[1] >= 3.0,
        "256-member cohort speedup {:.2} below the 3x bar",
        speedups[1]
    );
    // Acceptance bar 2 (full mode): the legacy 256→1024 wall grows
    // super-linearly in the 4x cohort, and the tuned pipeline bends the
    // curve — strictly flatter growth, and an advantage that *widens*
    // with cohort size. (The curve does not go linear: with the witness
    // gone, what remains is the conflict analysis itself — every
    // non-disjoint member still builds a graph linear in the grown
    // epoch — so the honest claim is a flatter super-linear curve and a
    // monotone speedup, ~5x at 1024.)
    if !smoke {
        let legacy_growth = legacy_wall[2] / legacy_wall[1];
        let tuned_growth = tuned_wall[2] / tuned_wall[1];
        assert!(
            legacy_growth > 4.0,
            "legacy 256->1024 growth {legacy_growth:.1}x is not super-linear; \
             the baseline regressed out of the regime this experiment measures"
        );
        assert!(
            tuned_growth < legacy_growth * 0.9,
            "tuned 256->1024 growth {tuned_growth:.1}x did not flatten the \
             legacy curve ({legacy_growth:.1}x)"
        );
        assert!(
            speedups[2] > speedups[1] && speedups[1] > speedups[0],
            "the tuned advantage must widen with cohort size, got {speedups:?}"
        );
    }

    println!("\nstorm herd (E21's uncapped cell, both pipelines):\n");
    let herd_outage: u64 = if smoke { 30 } else { 60 };
    let herd_fleet: usize = 300;
    let mut herd = Table::new(&[
        "scenario",
        "batch_max",
        "syncs",
        "commits",
        "saved",
        "legacy_ms",
        "tuned_ms",
        "speedup",
        "merges_per_sec",
    ]);
    let mut legacy_cfg = herd_config(herd_fleet, herd_outage, CohortConfig::legacy());
    legacy_cfg.session.backoff = RetryBackoff::enabled();
    let mut tuned_cfg = herd_config(herd_fleet, herd_outage, CohortConfig::tuned());
    tuned_cfg.session.backoff = RetryBackoff::enabled();
    let (legacy, legacy_ms) = run(legacy_cfg, reps);
    let (tuned, tuned_ms) = run(tuned_cfg, reps);
    eprintln!("  [o{herd_outage}-uncapped] legacy {legacy_ms:.0} ms, tuned {tuned_ms:.0} ms");
    assert_identical(&legacy, &tuned, "herd");
    let convergence = tuned.convergence.as_ref().expect("oracle requested");
    assert!(convergence.holds(), "herd: oracle failed: {convergence:?}");
    let m = &tuned.metrics;
    let batch_max = m.batch_sizes.iter().max().copied().unwrap_or(0);
    assert!(batch_max > 8, "no herd formed (batch_max {batch_max})");
    let herd_speedup = legacy_ms / tuned_ms;
    // Acceptance bar 3: the tuned pipeline pays the herd's bill —
    // measurably faster, not noise.
    assert!(
        herd_speedup >= 1.1,
        "herd speedup {herd_speedup:.2} is not a measurable improvement"
    );
    herd.row_owned(vec![
        format!("o{herd_outage}-uncapped"),
        batch_max.to_string(),
        m.syncs.to_string(),
        tuned.base_commits.to_string(),
        m.saved.to_string(),
        fmt(legacy_ms, 0),
        fmt(tuned_ms, 0),
        fmt(herd_speedup, 2),
        fmt(m.syncs as f64 / (tuned_ms / 1e3), 1),
    ]);
    herd.print();

    println!(
        "\nThe quadratic was never the conflict analysis — profiling the 256-member\n\
         cohort put four fifths of the install wall inside the Theorem-1 witness: a\n\
         per-merge O(|H_b ∪ H_m|²) topological sort producing a history nobody on\n\
         the install path ever reads. Deferring it (the witness stays available to\n\
         callers that ask) removes the dominant super-linear term; incremental edge\n\
         maintenance makes the epoch cache O(appended) per install, anchored\n\
         footprint unions make each staleness check O(words), wave re-speculation\n\
         turns the invalidated remainder's serial re-merges back into the parallel\n\
         phase, and the mask-disjoint fast path lets conflict-free members skip\n\
         graph construction entirely. Byte-identity of both arms is asserted\n\
         in-run: the speedup is mechanism, not semantics."
    );

    let json = artifact_json("exp_cohort", &[("cohort", &cohort), ("herd", &herd)]);
    println!("\nartifact: {}", write_artifact("BENCH_cohort", &json).display());
}
