//! E17 — tracer overhead and per-phase latency breakdown.
//!
//! Two questions about the flight-recorder instrumentation threaded
//! through the merge/session/WAL stack:
//!
//! 1. **What does tracing cost?** The same durable session run is timed
//!    under the no-op tracer (the default every production config
//!    carries), a bounded flight-recorder ring, and the unbounded JSONL
//!    sink. Two independent no-op batches bound the measurement noise —
//!    the "zero-overhead" claim is that the no-op path costs nothing
//!    beyond that noise, because `TracerHandle::emit` skips event
//!    construction entirely when the sink is disabled.
//! 2. **Where does a sync spend its time?** The span registry's
//!    per-phase histograms break one run down into merge-plan, install,
//!    re-execute, and WAL-append time, set against the Section 7.1 cost
//!    model's analytical decomposition of the same run.
//!
//! Every traced run is audited: `Metrics::normalized()` must be
//! byte-identical to the no-op run — instrumentation is observation-only.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_observability`

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use histmerge_bench::{artifact_json, fmt, write_artifact, Table};
use histmerge_obs::{FlightRecorder, JsonlSink, Phase, RegistrySnapshot, TracerHandle};
use histmerge_replication::{
    DurabilityConfig, FaultPlan, Protocol, SimConfig, SimReport, Simulation, SyncPath, SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

fn reps() -> usize {
    std::env::var("E17_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(25)
}

fn config(seed: u64, tracer: TracerHandle) -> SimConfig {
    SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 60,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.08,
            hot_prob: 0.6,
            seed,
            ..ScenarioParams::default()
        },
        sync_path: SyncPath::Session,
        fault: FaultPlan::none(),
        check_convergence: true,
        durability: DurabilityConfig { enabled: true, checkpoint_every: 128 },
        tracer,
        ..SimConfig::default()
    }
}

fn run_once(tracer: TracerHandle) -> (f64, SimReport) {
    let sim = Simulation::new(config(7, tracer)).expect("valid sim config");
    let started = Instant::now();
    let report = sim.run();
    (started.elapsed().as_secs_f64() * 1e3, report)
}

/// Median-of-N wall-clock milliseconds per mode, measured interleaved
/// (round-robin over the modes each round) plus each mode's last report
/// for the observation-only audit. Two defenses against a noisy host:
/// the starting mode rotates each round so allocator/cache state left by
/// the previous run — a systematic position effect — lands on every mode
/// equally often, and the median (not min or mean) absorbs both one-off
/// spikes and monotone drift such as the host settling slower after the
/// first runs. `E17_REPS` overrides the round count.
fn measure(modes: &[(&str, &dyn Fn() -> TracerHandle)]) -> Vec<(f64, SimReport)> {
    let n = modes.len();
    let mut samples: Vec<Vec<f64>> = modes.iter().map(|_| Vec::new()).collect();
    let mut last: Vec<Option<SimReport>> = modes.iter().map(|_| None).collect();
    for _ in 0..2 {
        run_once(TracerHandle::noop()); // warmup: page in code and allocator arenas
    }
    for round in 0..reps() {
        for k in 0..n {
            let i = (round + k) % n;
            let (ms, report) = run_once((modes[i].1)());
            samples[i].push(ms);
            last[i] = Some(report);
        }
    }
    samples
        .into_iter()
        .zip(last)
        .map(|(mut times, report)| {
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            (times[times.len() / 2], report.expect("at least one rep"))
        })
        .collect()
}

fn phase_row(snapshot: &RegistrySnapshot, phase: Phase) -> Vec<String> {
    let grand = snapshot.grand_total().max(1) as f64;
    match snapshot.phase(phase) {
        Some(p) => vec![
            phase.name().to_string(),
            p.count.to_string(),
            fmt(p.mean() / 1e3, 2),
            fmt(p.total as f64 / 1e6, 3),
            fmt(p.p99_bound as f64 / 1e3, 1),
            fmt(100.0 * p.total as f64 / grand, 1),
        ],
        None => vec![
            phase.name().to_string(),
            "0".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
    }
}

fn main() {
    println!("E17: tracer overhead and phase-latency breakdown (6 mobiles, 600 ticks)\n");

    // --- Overhead: noop (twice, to bound noise) vs ring vs JSONL. ---
    // Each jsonl rep gets a fresh sink (an accumulating buffer would grow
    // across reps and skew later rounds); the last handle feeds the phase
    // breakdown below.
    let jsonl_last: RefCell<Option<TracerHandle>> = RefCell::new(None);
    let make_ring = || FlightRecorder::handle(4096);
    let make_jsonl = || {
        let handle = TracerHandle::new(Arc::new(JsonlSink::new()));
        *jsonl_last.borrow_mut() = Some(handle.clone());
        handle
    };
    let modes: [(&str, &dyn Fn() -> TracerHandle); 4] = [
        ("noop", &TracerHandle::noop),
        ("noop (rerun)", &TracerHandle::noop),
        ("ring 4096", &make_ring),
        ("jsonl", &make_jsonl),
    ];
    let mut results = measure(&modes);
    let (jsonl_ms, jsonl_report) = results.pop().expect("four modes");
    let (ring_ms, ring_report) = results.pop().expect("four modes");
    let (noop_b_ms, _) = results.pop().expect("four modes");
    let (noop_a_ms, noop_report) = results.pop().expect("four modes");

    // Observation-only audit: every traced run equals the untraced run
    // byte-for-byte after stripping wall-clock fields.
    for (traced, label) in [(&ring_report, "ring"), (&jsonl_report, "jsonl")] {
        assert_eq!(
            noop_report.final_master, traced.final_master,
            "{label}: tracing changed the final master"
        );
        assert_eq!(
            noop_report.metrics.normalized(),
            traced.metrics.normalized(),
            "{label}: tracing perturbed the run"
        );
    }

    let overhead = |ms: f64| 100.0 * (ms - noop_a_ms) / noop_a_ms;
    let mut table = Table::new(&["tracer", "medianMs", "overheadPct"]);
    table.row_owned(vec!["noop".into(), fmt(noop_a_ms, 2), "0.0 (baseline)".into()]);
    table.row_owned(vec!["noop (rerun)".into(), fmt(noop_b_ms, 2), fmt(overhead(noop_b_ms), 1)]);
    table.row_owned(vec!["ring 4096".into(), fmt(ring_ms, 2), fmt(overhead(ring_ms), 1)]);
    table.row_owned(vec!["jsonl".into(), fmt(jsonl_ms, 2), fmt(overhead(jsonl_ms), 1)]);
    table.print();

    // The no-op path's cost is bounded by the spread between two
    // independent no-op batches — the measured number is the headline,
    // the assertion bound is deliberately lenient (5%) so a noisy CI
    // runner cannot flake the experiment.
    let noop_spread = overhead(noop_b_ms).abs();
    println!(
        "\nnoop overhead (batch-to-batch spread): {}% — the disabled tracer is \
         indistinguishable from measurement noise.",
        fmt(noop_spread, 2)
    );
    assert!(noop_spread < 5.0, "no-op tracer spread {noop_spread:.2}% exceeds the 5% noise bound");

    // --- Phase breakdown of the traced run vs the cost model. ---
    let jsonl_handle = jsonl_last.into_inner().expect("jsonl mode ran");
    let snapshot = jsonl_handle.snapshot().expect("jsonl sink keeps a registry");
    let mut phases = Table::new(&["phase", "count", "meanUs", "totalMs", "p99Us", "sharePct"]);
    for phase in [
        Phase::MergePlan,
        Phase::GraphBuild,
        Phase::Backout,
        Phase::Rewrite,
        Phase::Prune,
        Phase::Install,
        Phase::Reexecute,
        Phase::WalAppend,
        Phase::Checkpoint,
        Phase::Sync,
    ] {
        phases.row_owned(phase_row(&snapshot, phase));
    }
    println!();
    phases.print();

    // The acceptance floor: the four load-bearing phases all recorded.
    for phase in [Phase::MergePlan, Phase::Install, Phase::Reexecute, Phase::WalAppend] {
        let p = snapshot
            .phase(phase)
            .unwrap_or_else(|| panic!("phase {} recorded no spans", phase.name()));
        assert!(p.count > 0, "phase {} recorded no spans", phase.name());
    }

    // Set the measured wall-clock shares against the Section 7.1 model's
    // analytical decomposition of the same run: the model charges work
    // units, the spans charge nanoseconds — the comparison is of shapes,
    // not units.
    let cost = &jsonl_report.metrics.cost;
    let model_total = cost.total().max(f64::MIN_POSITIVE);
    let mut model = Table::new(&["component", "workUnits", "sharePct"]);
    for (name, units) in [
        ("comm", cost.comm),
        ("base_cpu", cost.base_cpu),
        ("base_io", cost.base_io),
        ("mobile_cpu", cost.mobile_cpu),
    ] {
        model.row_owned(vec![name.into(), fmt(units, 1), fmt(100.0 * units / model_total, 1)]);
    }
    println!("\ncost-model decomposition of the same run (Section 7.1 units):");
    model.print();

    let json = artifact_json("exp_observability", &[("overhead", &table), ("phases", &phases)]);
    println!("\nartifact: {}", write_artifact("exp_observability", &json).display());
}
