//! E14 — the parallel base-tier merge pipeline.
//!
//! Two parts:
//!
//! 1. A micro sweep over batch sizes, timing `merge_batch` with one worker
//!    vs a pool, on the same jobs — the raw pipeline speedup (only
//!    meaningful on a multi-core host; single-CPU runs show pool
//!    overhead).
//! 2. An end-to-end A/B: the full simulation under Strategy 2 with
//!    synchronized reconnects, once with `Parallelism::Serial` and once
//!    with `Parallelism::Threads(4)`. Asserts the final master state,
//!    saved counts, and per-sync records are **identical** — the
//!    pipeline's determinism contract — and reports the batch-size
//!    histogram plus speculative hit/retry counts.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_parallel_sync`

use std::collections::BTreeMap;
use std::time::Instant;

use histmerge_bench::{fmt, Table};
use histmerge_core::merge::{MergeConfig, Merger};
use histmerge_history::{AugmentedHistory, BaseEdgeCache, SerialHistory};
use histmerge_replication::{
    merge_batch, BatchJob, Parallelism, Protocol, SimConfig, Simulation, SyncStrategy,
};
use histmerge_workload::generator::{generate, ScenarioParams};

fn micro_sweep() {
    println!("E14a: merge_batch wall-clock, 1 worker vs pool (40 txns per mobile)\n");
    let mut table = Table::new(&["batch", "serial ms", "pool ms", "speedup"]);
    for batch in [2usize, 4, 8, 16] {
        const PER: usize = 40;
        let sc = generate(&ScenarioParams {
            n_vars: 256,
            n_tentative: batch * PER,
            n_base: 60,
            commutative_fraction: 0.5,
            guarded_fraction: 0.1,
            read_only_fraction: 0.05,
            hot_fraction: 0.05,
            hot_prob: 0.2,
            seed: 77,
            ..ScenarioParams::default()
        });
        let jobs: Vec<BatchJob> = sc
            .hm
            .order()
            .chunks(PER)
            .enumerate()
            .map(|(mobile, chunk)| BatchJob {
                mobile,
                hm: SerialHistory::from_order(chunk.iter().copied()),
            })
            .collect();
        let mut cache = BaseEdgeCache::new();
        cache.sync(&sc.arena, &sc.hb);
        let hb_final =
            AugmentedHistory::execute(&sc.arena, &sc.hb, &sc.s0).unwrap().final_state().clone();
        let make = || Merger::new(MergeConfig::default());
        let workers = Parallelism::Auto.workers(batch).max(2);

        let time = |w: usize| {
            const REPS: usize = 5;
            let start = Instant::now();
            for _ in 0..REPS {
                let out =
                    merge_batch(&sc.arena, &jobs, &sc.hb, &sc.s0, &hb_final, &cache, &make, w, false);
                assert!(out.iter().all(Result::is_ok));
            }
            start.elapsed().as_secs_f64() * 1e3 / REPS as f64
        };
        let serial_ms = time(1);
        let pool_ms = time(workers);
        table.row_owned(vec![
            batch.to_string(),
            fmt(serial_ms, 2),
            fmt(pool_ms, 2),
            format!("{}x", fmt(serial_ms / pool_ms.max(1e-9), 2)),
        ]);
    }
    table.print();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n(available cores: {cores} — speedup > 1 expected only with 2+)");
}

fn ab_config(strategy: SyncStrategy, parallelism: Parallelism) -> SimConfig {
    SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy,
        parallelism,
        synchronized_reconnects: true,
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.08,
            hot_prob: 0.6,
            seed: 7,
            ..ScenarioParams::default()
        },
        ..SimConfig::default()
    }
}

fn end_to_end_ab() {
    println!("\nE14b: full-simulation A/B, Parallelism::Serial vs Threads(4)\n");
    let mut table =
        Table::new(&["strategy", "syncs", "saved", "specHit", "specRetry", "master equal"]);
    let strategies = [
        ("window w=150".to_string(), SyncStrategy::WindowStart { window: 150 }),
        ("adaptive hb<=60".to_string(), SyncStrategy::AdaptiveWindow { max_hb: 60 }),
    ];
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for (label, strategy) in strategies {
        let serial = Simulation::new(ab_config(strategy, Parallelism::Serial))
            .expect("valid sim config")
            .run();
        let parallel = Simulation::new(ab_config(strategy, Parallelism::Threads(4)))
            .expect("valid sim config")
            .run();
        let equal = serial.final_master == parallel.final_master;
        table.row_owned(vec![
            label.clone(),
            parallel.metrics.syncs.to_string(),
            parallel.metrics.saved.to_string(),
            parallel.metrics.speculative_hits.to_string(),
            parallel.metrics.speculative_retries.to_string(),
            equal.to_string(),
        ]);
        assert!(equal, "parallel pipeline diverged from serial under {label}");
        assert_eq!(
            serial.metrics.saved, parallel.metrics.saved,
            "saved counts diverged under {label}"
        );
        assert_eq!(
            serial.metrics.records.len(),
            parallel.metrics.records.len(),
            "sync records diverged under {label}"
        );
        for size in &parallel.metrics.batch_sizes {
            *histogram.entry(*size).or_default() += 1;
        }
    }
    table.print();
    let hist: Vec<String> =
        histogram.iter().map(|(size, count)| format!("{size}:{count}")).collect();
    println!("\nbatch-size histogram (size:count): {}", hist.join(" "));
    println!("Serial and parallel runs produced IDENTICAL masters, saves, and records.");
}

fn main() {
    micro_sweep();
    end_to_end_ab();
}
