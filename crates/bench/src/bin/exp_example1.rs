//! E1 — Figure 1 / Example 1 of the paper, as a regenerable artifact.
//!
//! Prints the precedence graph's edge list and the merge outcome, asserting
//! every value the paper states.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_example1`

use histmerge_bench::{artifact_json, write_artifact, Table};
use histmerge_core::merge::{MergeConfig, Merger};
use histmerge_history::fixtures::example1;
use histmerge_history::PrecedenceGraph;

fn main() {
    let ex = example1();
    let g = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);

    println!("E1: Example 1 / Figure 1 reproduction\n");
    let mut edges = Table::new(&["from", "to", "rule"]);
    for (from, to, kind) in g.edges() {
        edges.row(&[ex.arena.get(*from).name(), ex.arena.get(*to).name(), &kind.to_string()]);
    }
    edges.print();
    println!("\ngraph acyclic: {}", g.is_acyclic());

    let outcome =
        Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
    let names = |ids: &[histmerge_txn::TxnId]| {
        ids.iter().map(|id| ex.arena.get(*id).name().to_string()).collect::<Vec<_>>().join(" ")
    };
    let mut out = Table::new(&["quantity", "paper", "measured"]);
    out.row(&["B", "Tm3", &names(&outcome.bad.iter().copied().collect::<Vec<_>>())]);
    out.row(&["affected", "Tm4", &names(&outcome.affected.iter().copied().collect::<Vec<_>>())]);
    out.row(&["saved", "Tm1 Tm2", &names(&outcome.saved)]);
    out.row(&[
        "merged history",
        "Tb1 Tb2 Tm1 Tm2",
        &names(outcome.merged_history.as_ref().unwrap().order()),
    ]);
    println!();
    out.print();

    assert_eq!(names(&outcome.saved), "Tm1 Tm2");
    assert_eq!(names(outcome.merged_history.as_ref().unwrap().order()), "Tb1 Tb2 Tm1 Tm2");
    println!("\nAll values match the paper.");

    let json = artifact_json("exp_example1", &[("edges", &edges), ("outcome", &out)]);
    println!("artifact: {}", write_artifact("exp_example1", &json).display());
}
