//! E16 — durable write-ahead logging and checkpointed recovery.
//!
//! Sweeps the checkpoint interval over a fixed session-path run and
//! measures the durability trade-off the interval buys:
//!
//! * **WAL volume** — records and bytes appended, plus the bytes still
//!   live after checkpoint compaction retires old segments;
//! * **recovery work** — records replayed after the latest checkpoint
//!   and wall-clock time for a full `recover()` from the end-of-run log.
//!
//! `ckptEvery = 0` is the genesis-only baseline: one checkpoint at
//! segment 0, so recovery replays the entire run. Frequent checkpoints
//! shrink both the live byte footprint and the replay tail at the price
//! of snapshot bytes written.
//!
//! Every cell is audited: recovery must reproduce the live end state
//! exactly (log, window, session ledger), and the durable run's
//! normalized metrics must match the plain session run byte-for-byte —
//! logging is observation-only.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_durability`

use histmerge_bench::{artifact_json, fmt, timed, write_artifact, Table};
use histmerge_replication::{
    recover, DurabilityConfig, FaultPlan, Protocol, SimConfig, SimReport, Simulation, SyncPath,
    SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

const SEEDS: u64 = 3;

fn config(seed: u64, durability: DurabilityConfig) -> SimConfig {
    SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 60,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.08,
            hot_prob: 0.6,
            seed,
            ..ScenarioParams::default()
        },
        sync_path: SyncPath::Session,
        fault: FaultPlan::none(),
        check_convergence: true,
        durability,
        ..SimConfig::default()
    }
}

/// One checkpoint interval, summed (volume) or averaged (time) over the
/// seed set.
struct Cell {
    records: u64,
    bytes: u64,
    live_bytes: usize,
    checkpoints: u64,
    retired: u64,
    replayed: usize,
    recovery_ms: f64,
}

fn run_cell(interval: u64, baseline: &[SimReport]) -> Cell {
    let mut cell = Cell {
        records: 0,
        bytes: 0,
        live_bytes: 0,
        checkpoints: 0,
        retired: 0,
        replayed: 0,
        recovery_ms: 0.0,
    };
    for seed in 0..SEEDS {
        let durability = DurabilityConfig { enabled: true, checkpoint_every: interval };
        let report = Simulation::new(config(seed, durability)).expect("valid sim config").run();
        let convergence = report.convergence.as_ref().expect("oracle requested");
        assert!(convergence.holds(), "ckpt {interval} seed {seed}: oracle failed: {convergence:?}");

        // Logging is observation-only: the durable run equals the plain
        // session run on everything the WAL counters don't measure.
        let plain = &baseline[seed as usize];
        assert_eq!(report.final_master, plain.final_master, "ckpt {interval} seed {seed}");
        assert_eq!(
            report.metrics.normalized(),
            plain.metrics.normalized(),
            "ckpt {interval} seed {seed}: durability perturbed the run"
        );

        cell.records += report.metrics.wal.records;
        cell.bytes += report.metrics.wal.bytes;
        cell.checkpoints += report.metrics.wal.checkpoints;
        cell.retired += report.metrics.wal.segments_retired;

        // Recover from the end-of-run log and audit against live state.
        let durable = report.durable.expect("durability enabled");
        cell.live_bytes += durable.storage.live_bytes();
        let (recovered, ms) = timed(|| recover(&durable.arena, &durable.storage));
        let recovered = recovered.expect("end-of-run log recovers");
        assert!(!recovered.torn, "ckpt {interval} seed {seed}: clean log reported torn");
        assert_eq!(recovered.base.log(), &durable.log[..], "ckpt {interval} seed {seed}: log");
        assert_eq!(recovered.epoch, durable.epoch, "ckpt {interval} seed {seed}: epoch");
        assert_eq!(recovered.ledger, durable.ledger, "ckpt {interval} seed {seed}: ledger");
        cell.replayed += recovered.records_applied;
        cell.recovery_ms += ms / SEEDS as f64;
    }
    cell
}

fn main() {
    println!(
        "E16: WAL checkpoint interval vs recovery work (6 mobiles, 600 ticks, {SEEDS} seeds)\n"
    );

    // The observation-only baseline: the same runs without durability.
    let baseline: Vec<SimReport> = (0..SEEDS)
        .map(|seed| {
            Simulation::new(config(seed, DurabilityConfig::default()))
                .expect("valid sim config")
                .run()
        })
        .collect();

    let mut table = Table::new(&[
        "ckptEvery",
        "walRecords",
        "walKiB",
        "liveKiB",
        "checkpoints",
        "retired",
        "replayed",
        "recoveryMs",
    ]);
    let mut replayed_genesis_only = 0usize;
    let mut replayed_frequent = 0usize;
    for interval in [0u64, 32, 128, 512] {
        let cell = run_cell(interval, &baseline);
        if interval == 0 {
            replayed_genesis_only = cell.replayed;
        }
        if interval == 32 {
            replayed_frequent = cell.replayed;
        }
        table.row_owned(vec![
            if interval == 0 { "genesis".into() } else { interval.to_string() },
            cell.records.to_string(),
            fmt(cell.bytes as f64 / 1024.0, 1),
            fmt(cell.live_bytes as f64 / 1024.0, 1),
            cell.checkpoints.to_string(),
            cell.retired.to_string(),
            cell.replayed.to_string(),
            fmt(cell.recovery_ms, 3),
        ]);
    }
    table.print();

    // The headline: checkpoints bound the replay tail. Genesis-only
    // recovery replays the whole run; a 32-record interval replays only
    // what landed since the last snapshot.
    assert!(
        replayed_frequent < replayed_genesis_only,
        "frequent checkpoints did not shrink the replay tail: \
         {replayed_frequent} >= {replayed_genesis_only}"
    );
    println!(
        "\nreplay tail: genesis-only {replayed_genesis_only} records vs {replayed_frequent} at \
         interval 32 — checkpoints bound recovery work, compaction bounds the live log."
    );

    let json = artifact_json("exp_durability", &[("checkpoint_sweep", &table)]);
    println!("\nartifact: {}", write_artifact("exp_durability", &json).display());
}
