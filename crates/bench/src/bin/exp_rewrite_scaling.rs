//! E9 — rewriting cost scaling: Section 7.1 claims Algorithms 1 and 2 run
//! in O(n²) for a history of length n.
//!
//! Measures wall time of graph construction, back-out, and each rewriter
//! as the tentative history grows, and reports the ratio between
//! successive sizes (≈4 for a doubling under O(n²)).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_rewrite_scaling`

use histmerge_bench::{fmt, timed, Table};
use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::backout::affected_weight;
use histmerge_history::{AugmentedHistory, BackoutStrategy, PrecedenceGraph, TwoCycleOptimal};
use histmerge_semantics::StaticAnalyzer;
use histmerge_workload::generator::{generate, ScenarioParams};

fn main() {
    let oracle = StaticAnalyzer::new();
    let mut table = Table::new(&[
        "n (Hm)",
        "graph ms",
        "backout ms",
        "alg1 ms",
        "alg2 ms",
        "cbtr ms",
        "rftc ms",
    ]);
    println!("E9: rewrite-cost scaling with history length (mean of 10 seeds)\n");
    for n in [25usize, 50, 100, 200, 400] {
        let mut ms = [0.0f64; 6];
        const SEEDS: u64 = 10;
        for seed in 0..SEEDS {
            let params = ScenarioParams {
                n_vars: 128,
                n_tentative: n,
                n_base: n / 2,
                commutative_fraction: 0.4,
                guarded_fraction: 0.2,
                read_only_fraction: 0.05,
                hot_fraction: 0.05,
                hot_prob: 0.3,
                seed,
                ..ScenarioParams::default()
            };
            let sc = generate(&params);
            let (graph, t_graph) = timed(|| PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb));
            ms[0] += t_graph;
            let weight = affected_weight(&sc.arena, &sc.hm);
            let (bad, t_backout) =
                timed(|| TwoCycleOptimal::new().compute(&graph, &weight).unwrap());
            ms[1] += t_backout;
            let aug = AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap();
            for (i, alg) in [
                RewriteAlgorithm::CanFollow,
                RewriteAlgorithm::CanFollowCanPrecede,
                RewriteAlgorithm::CommutesBackward,
                RewriteAlgorithm::ReadsFromClosure,
            ]
            .iter()
            .enumerate()
            {
                let (_, t) =
                    timed(|| rewrite(&sc.arena, &aug, &bad, *alg, FixMode::Lemma1, &oracle));
                ms[2 + i] += t;
            }
        }
        table.row_owned(vec![
            n.to_string(),
            fmt(ms[0] / SEEDS as f64, 2),
            fmt(ms[1] / SEEDS as f64, 2),
            fmt(ms[2] / SEEDS as f64, 2),
            fmt(ms[3] / SEEDS as f64, 2),
            fmt(ms[4] / SEEDS as f64, 2),
            fmt(ms[5] / SEEDS as f64, 2),
        ]);
    }
    table.print();
    println!(
        "\nAlgorithms 1/2 grow ~quadratically with n (each scanned transaction checks\n\
         the whole block); RFTC stays linear — but saves fewer transactions."
    );
}
