//! E10 — fix computation: Lemma 1 (incremental) vs Lemma 2
//! (readset − writeset).
//!
//! Lemma 2 trades larger fixes for O(1) per-transaction computation (the
//! set can be logged once when the transaction runs). The experiment
//! measures mean fix sizes and rewrite times under both modes and verifies
//! final-state equivalence of both rewritten histories.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_fixes`

use histmerge_bench::{fmt, timed, Table};
use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::backout::affected_weight;
use histmerge_history::{AugmentedHistory, BackoutStrategy, PrecedenceGraph, TwoCycleOptimal};
use histmerge_semantics::StaticAnalyzer;
use histmerge_workload::generator::{generate, ScenarioParams};

fn main() {
    let oracle = StaticAnalyzer::new();
    let mut table = Table::new(&[
        "reads/txn",
        "mode",
        "mean fix vars",
        "fixed txns",
        "rewrite ms",
        "equivalent",
    ]);
    println!("E10: Lemma 1 vs Lemma 2 fixes (30 seeds per row)\n");
    for reads in [1usize, 3, 6] {
        for fix_mode in [FixMode::Lemma1, FixMode::Lemma2] {
            let mut fix_vars = 0usize;
            let mut fixed_txns = 0usize;
            let mut ms = 0.0;
            let mut equivalent = true;
            let mut cyclic = 0usize;
            for seed in 0..30u64 {
                let params = ScenarioParams {
                    n_vars: 48,
                    n_tentative: 20,
                    n_base: 12,
                    commutative_fraction: 0.3,
                    guarded_fraction: 0.2,
                    read_only_fraction: 0.0,
                    reads_per_txn: reads,
                    writes_per_txn: 2,
                    hot_fraction: 0.12,
                    hot_prob: 0.5,
                    seed,
                };
                let sc = generate(&params);
                let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
                let weight = affected_weight(&sc.arena, &sc.hm);
                let bad = TwoCycleOptimal::new().compute(&graph, &weight).unwrap();
                if bad.is_empty() {
                    continue;
                }
                cyclic += 1;
                let aug = AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap();
                let (rw, t) = timed(|| {
                    rewrite(
                        &sc.arena,
                        &aug,
                        &bad,
                        RewriteAlgorithm::CanFollowCanPrecede,
                        fix_mode,
                        &oracle,
                    )
                });
                ms += t;
                for (_, fix) in rw.suffix() {
                    if !fix.is_empty() {
                        fixed_txns += 1;
                        fix_vars += fix.len();
                    }
                }
                let replay =
                    AugmentedHistory::execute_with_fixes(&sc.arena, rw.entries(), &sc.s0).unwrap();
                equivalent &= replay.final_state_equivalent(&aug);
            }
            table.row_owned(vec![
                reads.to_string(),
                format!("{fix_mode:?}"),
                fmt(fix_vars as f64 / fixed_txns.max(1) as f64, 2),
                fmt(fixed_txns as f64 / cyclic.max(1) as f64, 2),
                fmt(ms / cyclic.max(1) as f64, 3),
                equivalent.to_string(),
            ]);
            assert!(equivalent, "fix mode {fix_mode:?} broke equivalence");
        }
    }
    table.print();
    println!(
        "\nLemma 2 fixes pin the whole readset−writeset, so they grow with the\n\
         transaction's pure-read footprint; Lemma 1 pins only the items actually\n\
         overwritten by jumping transactions. Both preserve final-state equivalence."
    );
}
