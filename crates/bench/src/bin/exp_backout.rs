//! E7 — back-out strategy quality and cost (\[Dav84\] step 2).
//!
//! Compares the exact minimum, Davidson's two-cycle-optimal heuristic, and
//! the plain greedy strategy across conflict densities: mean |B|, mean
//! back-out *weight* (1 + affected-closure size per backed-out
//! transaction), and wall time.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_backout`

use histmerge_bench::{fmt, timed, Table};
use histmerge_history::backout::affected_weight;
use histmerge_history::{
    BackoutStrategy, ExactMinimum, GreedyScc, PrecedenceGraph, TwoCycleOptimal,
};
use histmerge_workload::generator::{generate, ScenarioParams};

fn main() {
    let strategies: Vec<Box<dyn BackoutStrategy>> = vec![
        Box::new(ExactMinimum::new()),
        Box::new(TwoCycleOptimal::new()),
        Box::new(GreedyScc::new()),
    ];
    let mut table = Table::new(&[
        "hot_prob",
        "strategy",
        "mean |B|",
        "mean weight",
        "ms/graph",
        "cyclic scen.",
    ]);

    println!("E7: back-out strategies across conflict densities (40 seeds each)\n");
    for hot_prob in [0.3, 0.5, 0.7, 0.9] {
        for s in &strategies {
            let mut total_b = 0usize;
            let mut total_w = 0u64;
            let mut total_ms = 0.0;
            let mut cyclic = 0usize;
            for seed in 0..40u64 {
                let params = ScenarioParams {
                    n_vars: 40,
                    n_tentative: 18,
                    n_base: 12,
                    commutative_fraction: 0.3,
                    guarded_fraction: 0.2,
                    read_only_fraction: 0.05,
                    hot_fraction: 0.1,
                    hot_prob,
                    seed,
                    ..ScenarioParams::default()
                };
                let sc = generate(&params);
                let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
                if graph.is_acyclic() {
                    continue;
                }
                cyclic += 1;
                let weight = affected_weight(&sc.arena, &sc.hm);
                let (b, ms) = timed(|| s.compute(&graph, &weight).unwrap());
                assert!(graph.is_acyclic_without(&b));
                total_b += b.len();
                total_w += b.iter().map(|id| weight(*id)).sum::<u64>();
                total_ms += ms;
            }
            table.row_owned(vec![
                fmt(hot_prob, 1),
                s.name().to_string(),
                fmt(total_b as f64 / cyclic.max(1) as f64, 2),
                fmt(total_w as f64 / cyclic.max(1) as f64, 2),
                fmt(total_ms / cyclic.max(1) as f64, 3),
                cyclic.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nThe exact strategy sets the quality bar; two-cycle-optimal tracks it closely\n\
         (most conflicts are 2-cycles, as Davidson's simulations observed) at a\n\
         fraction of the cost; greedy is cheapest and loosest."
    );
}
