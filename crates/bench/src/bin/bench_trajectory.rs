//! The per-PR perf-trajectory gate over the committed `BENCH_pr10.json`.
//!
//! Two modes:
//!
//! * `bench_trajectory --write [--out PATH]` — combine the freshly
//!   emitted `BENCH_hotpath.json` (E18), `BENCH_scale.json` (E19),
//!   `BENCH_compaction.json` (E20), `BENCH_storm.json` (E21) and
//!   `BENCH_cohort.json` (E23) artifacts from `$EXPERIMENTS_DIR`
//!   (default `target/experiments`) into one trajectory document,
//!   written to `PATH` (default `BENCH_pr10.json`). Run from the repo
//!   root to refresh the committed baseline.
//! * `bench_trajectory --check BASELINE [--out PATH]` — combine the
//!   fresh artifacts the same way (written to `PATH` for CI upload),
//!   then compare every **throughput metric** — a column whose name
//!   contains `per_sec` or `speedup` — present in *both* the baseline
//!   and the fresh document. Rows are matched by table name plus the
//!   row's first (key) column, so a full-mode baseline gates a
//!   smoke-mode run on the rows they share. The gate fails (exit 1) if
//!   any fresh metric falls below `(1 - tolerance) x baseline`;
//!   `tolerance` is 0.25, overridable via `BENCH_TRAJECTORY_TOLERANCE`.
//!
//! Absolute `per_sec` numbers shift with the hardware profile, which is
//! why the band is wide and one-sided (only regressions fail, speedups
//! never do) and why the baseline should be refreshed from the CI
//! artifact after a runner-profile change — see README.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use histmerge_bench::json::{metric_number, parse, JsonVal};

/// The artifacts a trajectory document combines, in document order.
const ARTIFACTS: [&str; 5] =
    ["BENCH_hotpath", "BENCH_scale", "BENCH_compaction", "BENCH_storm", "BENCH_cohort"];

fn artifacts_dir() -> PathBuf {
    std::env::var_os("EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"))
}

/// Reads and validates one emitted artifact, returning its raw JSON text.
fn read_artifact(name: &str) -> Result<String, String> {
    let path = artifacts_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {} (run exp_hotpath, exp_scale, exp_compaction, exp_storm and \
             exp_cohort first): {e}",
            path.display()
        )
    })?;
    parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    Ok(text)
}

/// Combines the per-experiment artifacts into the trajectory document.
/// The payloads are already-validated JSON, so assembly is textual.
fn combine() -> Result<String, String> {
    let mut entries = Vec::new();
    for name in ARTIFACTS {
        entries.push(format!("\"{name}\":{}", read_artifact(name)?));
    }
    Ok(format!("{{\"bench\":\"trajectory\",\"artifacts\":{{{}}}}}", entries.join(",")))
}

/// Flattens a trajectory document into its throughput metrics:
/// `artifact/table[row-key].column -> value` for every column whose name
/// contains `per_sec` or `speedup`. The row key is the row's first
/// column (artifact rows always lead with one — fleet size, mobile
/// count), which keeps the mapping stable when a smoke run emits a
/// subset of the baseline's rows.
fn throughput_metrics(doc: &JsonVal) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let Some(artifacts) = doc.get("artifacts").and_then(JsonVal::as_obj) else {
        return metrics;
    };
    for (artifact, body) in artifacts {
        let Some(tables) = body.get("tables").and_then(JsonVal::as_obj) else { continue };
        for (table, rows) in tables {
            for row in rows.as_arr().unwrap_or(&[]) {
                let Some(members) = row.as_obj() else { continue };
                let Some((key_col, key_val)) = members.first() else { continue };
                let row_key = format!("{key_col}={}", key_val.as_str().unwrap_or("?"));
                for (column, value) in members {
                    if !column.contains("per_sec") && !column.contains("speedup") {
                        continue;
                    }
                    if let Some(v) = value.as_str().and_then(metric_number) {
                        metrics.insert(format!("{artifact}/{table}[{row_key}].{column}"), v);
                    }
                }
            }
        }
    }
    metrics
}

fn tolerance() -> f64 {
    std::env::var("BENCH_TRAJECTORY_TOLERANCE")
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.25)
}

/// Gates `fresh` against `baseline`. Returns the number of failures.
fn check(baseline: &JsonVal, fresh: &JsonVal) -> usize {
    let tolerance = tolerance();
    let base = throughput_metrics(baseline);
    let new = throughput_metrics(fresh);
    let floor = 1.0 - tolerance;
    let mut failures = 0;
    let mut compared = 0;
    println!("trajectory gate: fresh >= {floor:.2} x baseline on shared throughput metrics\n");
    for (name, &b) in &base {
        let Some(&f) = new.get(name) else {
            println!("  skip  {name} (not in fresh run)");
            continue;
        };
        compared += 1;
        let ratio = if b > 0.0 { f / b } else { 1.0 };
        let ok = f >= floor * b;
        if !ok {
            failures += 1;
        }
        println!(
            "  {}  {name}: baseline {b:.1}, fresh {f:.1} ({ratio:.2}x)",
            if ok { "ok  " } else { "FAIL" }
        );
    }
    for name in new.keys().filter(|n| !base.contains_key(*n)) {
        println!("  new   {name} (no baseline yet)");
    }
    println!(
        "\n{compared} metric(s) compared, {failures} regression(s) beyond the {:.0}% band",
        tolerance * 100.0
    );
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut baseline_path = None;
    let mut out = PathBuf::from("BENCH_pr10.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--write" => mode = Some("write"),
            "--check" => {
                mode = Some("check");
                baseline_path = it.next().cloned();
            }
            "--out" => {
                if let Some(p) = it.next() {
                    out = PathBuf::from(p);
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let combined = match combine() {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_trajectory: {e}");
            return ExitCode::FAILURE;
        }
    };

    match mode {
        Some("write") => {
            std::fs::write(&out, &combined).expect("write trajectory document");
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(baseline_path) = baseline_path else {
                eprintln!("usage: bench_trajectory --check BASELINE [--out PATH]");
                return ExitCode::FAILURE;
            };
            let baseline_text = match std::fs::read_to_string(&baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let baseline = match parse(&baseline_text) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("baseline {baseline_path} is invalid JSON: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Keep the fresh combined document for the CI artifact upload.
            std::fs::write(&out, &combined).expect("write trajectory document");
            println!("wrote fresh trajectory to {}\n", out.display());
            let fresh = parse(&combined).expect("combined document is valid");
            if check(&baseline, &fresh) == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: bench_trajectory (--write | --check BASELINE) [--out PATH]");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(scale_rows: &str) -> JsonVal {
        parse(&format!(
            "{{\"bench\":\"trajectory\",\"artifacts\":{{\
             \"BENCH_scale\":{{\"experiment\":\"exp_scale\",\"tables\":{{\
             \"scale\":[{scale_rows}]}}}}}}}}"
        ))
        .unwrap()
    }

    fn row(fleet: &str, mps: &str) -> String {
        format!("{{\"fleet\":\"{fleet}\",\"merges_per_sec\":\"{mps}\",\"wall_ms\":\"9\"}}")
    }

    #[test]
    fn extracts_only_throughput_columns_keyed_by_first_column() {
        let metrics = throughput_metrics(&doc(&row("10000", "123.4")));
        assert_eq!(
            metrics,
            BTreeMap::from([("BENCH_scale/scale[fleet=10000].merges_per_sec".to_string(), 123.4)])
        );
    }

    #[test]
    fn gate_passes_within_band_and_fails_beyond_it() {
        let baseline = doc(&format!("{},{}", row("10000", "100"), row("1000000", "80")));
        // Within the 25% band, and the 1M baseline row absent from the
        // fresh (smoke) run is skipped, not failed.
        assert_eq!(check(&baseline, &doc(&row("10000", "76"))), 0);
        // Beyond the band: one failure.
        assert_eq!(check(&baseline, &doc(&row("10000", "74"))), 1);
        // Speedups never fail the gate.
        assert_eq!(check(&baseline, &doc(&row("10000", "500"))), 0);
    }
}
