//! E18 — the hot-path data layout: seed layout vs interned footprint
//! bitsets, copy-on-write execution, and the one-pass closure table.
//!
//! The seed implementation paid for three habits on every merge: it cloned
//! the full `DbState` once per executed step (twice over — the tentative
//! log AND the base history it only needed the final state of), answered
//! every conflict question with `BTreeSet` intersections, and recomputed
//! the reads-from closure from scratch for every back-out weight and again
//! for the affected set. This experiment re-implements that seed layout
//! faithfully in-bin and races it against the new kernels on the E6
//! scaleup window volumes, asserting **byte-identical answers** at every
//! size before reporting the speedup. A second table races the full merge
//! protocol (fresh buffers per merge vs one reused [`MergeScratch`]).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_hotpath`

use std::collections::{BTreeMap, BTreeSet};

use histmerge_bench::{artifact_json, fmt, timed, write_artifact, Table};
use histmerge_core::merge::{MergeConfig, MergeScratch, Merger};
use histmerge_history::{
    run_to_final, AugmentedHistory, ClosureScratch, ClosureTable, SerialHistory, TxnArena,
};
use histmerge_txn::{DbState, Fix, OverlayState, TxnId, VarId};
use histmerge_workload::generator::{generate, ScenarioParams};

/// Everything both kernels must agree on, byte for byte.
#[derive(PartialEq)]
struct KernelAnswers {
    hm_final: DbState,
    hb_final: DbState,
    conflicts: usize,
    weights: BTreeMap<TxnId, u64>,
    affected: BTreeSet<TxnId>,
    reexec_final: DbState,
}

/// The seed-layout affected-set scan: per-variable taint over `BTreeSet`s.
fn seed_affected(arena: &TxnArena, hm: &SerialHistory, bad: &BTreeSet<TxnId>) -> BTreeSet<TxnId> {
    let mut tainted: BTreeSet<VarId> = BTreeSet::new();
    let mut affected = BTreeSet::new();
    for id in hm.iter() {
        let txn = arena.get(id);
        let is_bad = bad.contains(&id);
        let reads_tainted = !is_bad && txn.readset().iter().any(|v| tainted.contains(&v));
        if reads_tainted {
            affected.insert(id);
        }
        let taints = is_bad || reads_tainted;
        for v in txn.writeset().iter() {
            if taints {
                tainted.insert(v);
            } else {
                tainted.remove(&v);
            }
        }
    }
    affected
}

/// The seed merge hot path: clone-per-step execution of both histories,
/// `VarSet`-intersect conflict enumeration, one closure scan per back-out
/// weight plus one more for the affected set, and a clone-based
/// re-execution chain.
fn seed_kernel(
    arena: &TxnArena,
    hm: &SerialHistory,
    hb: &SerialHistory,
    s0: &DbState,
    bad: &BTreeSet<TxnId>,
) -> KernelAnswers {
    // Clone-per-step tentative log (the seed AugmentedHistory kept every
    // intermediate state whole).
    let mut hm_states = vec![s0.clone()];
    for id in hm.iter() {
        let out = arena.get(id).execute(hm_states.last().unwrap(), &Fix::empty()).unwrap();
        hm_states.push(out.after);
    }
    // Full-log base execution, even though only the final state is used.
    let mut hb_state = s0.clone();
    for id in hb.iter() {
        let out = arena.get(id).execute(&hb_state, &Fix::empty()).unwrap();
        hb_state = out.after;
    }
    // Pairwise conflict enumeration over BTreeSet intersections — the
    // work profile of the seed precedence-graph build.
    let ids: Vec<TxnId> = hm.iter().chain(hb.iter()).collect();
    let mut conflicts = 0usize;
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let (a, b) = (arena.get(ids[i]), arena.get(ids[j]));
            if a.readset().intersects(b.writeset())
                || a.writeset().intersects(b.readset())
                || a.writeset().intersects(b.writeset())
            {
                conflicts += 1;
            }
        }
    }
    // One full closure scan per transaction for the weights, then one
    // more for AG(B) — the seed's O(n²) pattern.
    let weights: BTreeMap<TxnId, u64> = hm
        .iter()
        .map(|id| {
            let singleton: BTreeSet<TxnId> = [id].into_iter().collect();
            (id, 1 + seed_affected(arena, hm, &singleton).len() as u64)
        })
        .collect();
    let affected = seed_affected(arena, hm, bad);
    // Clone-based re-execution of the affected transactions on a copy of
    // the tentative final state (the seed step-6 shape).
    let mut reexec_state = hm_states.last().unwrap().clone();
    for id in hm.iter().filter(|id| affected.contains(id)) {
        if let Ok(out) = arena.get(id).execute(&reexec_state, &Fix::empty()) {
            reexec_state = out.after;
        }
    }
    KernelAnswers {
        hm_final: hm_states.pop().unwrap(),
        hb_final: hb_state,
        conflicts,
        weights,
        affected,
        reexec_final: reexec_state,
    }
}

/// The new hot path: copy-on-write augmented execution, the log-free
/// `run_to_final`, admission-time bitset conflicts, one closure-table
/// build serving weights and affected set, and an overlay re-execution.
fn new_kernel(
    arena: &TxnArena,
    hm: &SerialHistory,
    hb: &SerialHistory,
    s0: &DbState,
    bad: &BTreeSet<TxnId>,
    scratch: &mut ClosureScratch,
) -> KernelAnswers {
    let aug = AugmentedHistory::execute(arena, hm, s0).unwrap();
    let hb_final = run_to_final(arena, hb, s0).unwrap();
    let ids: Vec<TxnId> = hm.iter().chain(hb.iter()).collect();
    let mut conflicts = 0usize;
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            if arena.conflicts(ids[i], ids[j]) {
                conflicts += 1;
            }
        }
    }
    let table = ClosureTable::build_with_scratch(arena, hm, scratch);
    let weights = table.weights();
    let affected = table.affected_of(bad);
    let mut view = OverlayState::new(aug.final_state());
    for id in hm.iter().filter(|id| affected.contains(id)) {
        if let Ok(delta) = arena.get(id).execute_delta(&view, &Fix::empty()) {
            view.apply_writes(&delta.writes);
        }
    }
    KernelAnswers {
        reexec_final: view.materialize(),
        hm_final: aug.final_state().clone(),
        hb_final,
        conflicts,
        weights,
        affected,
    }
}

fn main() {
    let scenario = |fleet: usize| {
        generate(&ScenarioParams {
            n_vars: 1024,
            n_tentative: 40 * fleet,
            n_base: 48,
            commutative_fraction: 0.7,
            guarded_fraction: 0.1,
            read_only_fraction: 0.1,
            hot_fraction: 0.05,
            hot_prob: 0.05,
            seed: 99,
            ..ScenarioParams::default()
        })
    };
    let fleets = [2usize, 4, 8, 16, 32];
    let reps = 3;

    println!("E18: hot-path data layout — seed layout vs bitsets + copy-on-write\n");
    let mut kernels = Table::new(&["fleet", "hm", "hb", "seed ms", "new ms", "speedup"]);
    let mut merges = Table::new(&["fleet", "merge ms", "scratch ms", "saved", "equal"]);
    let mut largest_speedup = 0.0f64;

    for &fleet in &fleets {
        let sc = scenario(fleet);
        let bad: BTreeSet<TxnId> = sc.hm.iter().step_by(5).collect();
        let mut closure_scratch = ClosureScratch::new();

        // Race the kernels; keep the fastest of `reps` runs of each.
        let mut seed_ms = f64::INFINITY;
        let mut new_ms = f64::INFINITY;
        let mut seed_out = None;
        let mut new_out = None;
        for _ in 0..reps {
            let (out, ms) = timed(|| seed_kernel(&sc.arena, &sc.hm, &sc.hb, &sc.s0, &bad));
            seed_ms = seed_ms.min(ms);
            seed_out = Some(out);
            let (out, ms) =
                timed(|| new_kernel(&sc.arena, &sc.hm, &sc.hb, &sc.s0, &bad, &mut closure_scratch));
            new_ms = new_ms.min(ms);
            new_out = Some(out);
        }
        let (seed_out, new_out) = (seed_out.unwrap(), new_out.unwrap());
        assert!(seed_out == new_out, "fleet {fleet}: the new layout diverged from the seed layout");
        let speedup = seed_ms / new_ms;
        largest_speedup = speedup; // fleets ascend; the last row is the largest.
        kernels.row_owned(vec![
            fleet.to_string(),
            sc.hm.len().to_string(),
            sc.hb.len().to_string(),
            fmt(seed_ms, 2),
            fmt(new_ms, 2),
            format!("{}x", fmt(speedup, 1)),
        ]);

        // The full protocol: fresh buffers per merge vs one reused scratch.
        let merger = Merger::new(MergeConfig::default());
        let mut scratch = MergeScratch::new();
        // Warm the scratch to its high-water mark before timing reuse.
        let _ = merger
            .merge_scratch(&sc.arena, &sc.hm, &sc.hb, &sc.s0, Default::default(), &mut scratch)
            .unwrap();
        let mut fresh_ms = f64::INFINITY;
        let mut reuse_ms = f64::INFINITY;
        let mut fresh = None;
        let mut reused = None;
        for _ in 0..reps {
            let (out, ms) = timed(|| merger.merge(&sc.arena, &sc.hm, &sc.hb, &sc.s0).unwrap());
            fresh_ms = fresh_ms.min(ms);
            fresh = Some(out);
            let (out, ms) = timed(|| {
                merger
                    .merge_scratch(
                        &sc.arena,
                        &sc.hm,
                        &sc.hb,
                        &sc.s0,
                        Default::default(),
                        &mut scratch,
                    )
                    .unwrap()
            });
            reuse_ms = reuse_ms.min(ms);
            reused = Some(out);
        }
        let (fresh, reused) = (fresh.unwrap(), reused.unwrap());
        let equal = fresh.new_master == reused.new_master
            && fresh.saved == reused.saved
            && fresh.backed_out == reused.backed_out
            && fresh.reexecuted == reused.reexecuted;
        assert!(equal, "fleet {fleet}: scratch reuse changed the merge outcome");
        merges.row_owned(vec![
            fleet.to_string(),
            fmt(fresh_ms, 2),
            fmt(reuse_ms, 2),
            fresh.saved.len().to_string(),
            "yes".to_string(),
        ]);
    }

    kernels.print();
    println!();
    merges.print();
    assert!(
        largest_speedup >= 2.0,
        "hot-path layout must be at least 2x on the largest config, got {largest_speedup:.1}x"
    );
    println!(
        "\nIdentical answers at every size (asserted above), with the largest config\n\
         {largest_speedup:.1}x faster: the wins come from not cloning a 1024-item state per\n\
         step, answering conflicts with word-wise ANDs over admission-interned\n\
         bitsets, and building the reads-from closure once instead of once per\n\
         weight query."
    );
    let path = write_artifact(
        "BENCH_hotpath",
        &artifact_json("exp_hotpath", &[("kernels", &kernels), ("merges", &merges)]),
    );
    println!("\nartifact: {}", path.display());
}
