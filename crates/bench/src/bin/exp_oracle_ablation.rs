//! E11 (ablation) — how the semantic-oracle back-end determines what
//! Algorithm 2 can save.
//!
//! Section 5.1 enumerates three detection regimes; this ablation measures
//! them on a mixed canned workload (bank deposits/withdraws + seasonal
//! promotions whose commutativity hinges on correlated guards):
//!
//! * **none** — no oracle: Algorithm 2 degrades to Algorithm 1;
//! * **static** — conservative code analysis: catches class-level
//!   commutativity (deposit/deposit), misses guard correlation;
//! * **static+declared** — the canned-system setup: adds the offline
//!   tables, catching the promotions too.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_oracle_ablation`

use std::collections::BTreeSet;

use histmerge_bench::{fmt, Table};
use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::{AugmentedHistory, SerialHistory, TxnArena};
use histmerge_semantics::{OracleStack, SemanticOracle, StaticAnalyzer};
use histmerge_txn::registry::TypeRegistry;
use histmerge_txn::{DbState, TxnId, VarId};
use histmerge_workload::canned::{Bank, Promotions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mixed tentative history: deposits, withdraws, and promotions over a
/// handful of accounts/prices; the first transaction is the back-out
/// target.
fn scenario(seed: u64, n: usize) -> (TxnArena, SerialHistory, BTreeSet<TxnId>, DbState) {
    let mut registry = TypeRegistry::new();
    let bank = Bank::register_in(&mut registry);
    let promo = Promotions::register_in(&mut registry);
    let mut arena = TxnArena::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let season = VarId::new(0);
    let price = |i: u32| VarId::new(1 + i % 3);
    let acct = |i: u32| VarId::new(4 + i % 3);

    // Two bad transactions: a deposit (static analysis can move same-account
    // deposits past it) and a promotion (only the declared table can move
    // other promotions past it).
    let bad_dep = arena.alloc(|id| bank.deposit(id, "bad-dep", acct(0), 999));
    let bad_promo = arena.alloc(|id| promo.bonus(id, "bad-promo", season, price(0)));
    let mut order = vec![bad_dep, bad_promo];
    for i in 0..n {
        let roll: f64 = rng.gen();
        let k = rng.gen_range(1..100);
        let id = if roll < 0.4 {
            // Half the deposits hit the bad deposit's account.
            let v = acct(rng.gen_range(0..2));
            arena.alloc(|id| bank.deposit(id, &format!("dep{i}"), v, k))
        } else if roll < 0.5 {
            let v = acct(rng.gen_range(0..3));
            arena.alloc(|id| bank.withdraw(id, &format!("wd{i}"), v, k))
        } else if roll < 0.8 {
            // Half the promotions hit the bad promotion's price item.
            let p = price(rng.gen_range(0..2));
            arena.alloc(|id| promo.bonus(id, &format!("bonus{i}"), season, p))
        } else {
            let p = price(rng.gen_range(0..2));
            arena.alloc(|id| promo.rebate(id, &format!("rebate{i}"), season, p))
        };
        order.push(id);
    }
    let mut s0 = DbState::uniform(7, 500);
    s0.set(season, 250); // in season
    (arena, SerialHistory::from_order(order), [bad_dep, bad_promo].into_iter().collect(), s0)
}

fn main() {
    let mut registry = TypeRegistry::new();
    let bank = Bank::register_in(&mut registry);
    let promo = Promotions::register_in(&mut registry);

    let oracles: Vec<(&str, Box<dyn SemanticOracle>)> = vec![
        ("none", Box::new(OracleStack::new())),
        ("static", Box::new(StaticAnalyzer::new())),
        (
            "static+declared",
            Box::new(
                OracleStack::new()
                    .with(Box::new(StaticAnalyzer::new()))
                    .with(Box::new(bank.declared_relations()))
                    .with(Box::new(promo.declared_relations())),
            ),
        ),
    ];

    let mut table = Table::new(&["oracle", "mean saved", "of", "verified"]);
    println!("E11 (ablation): Algorithm 2 saves vs oracle back-end (30 seeds, |Hm| = 22)\n");
    for (label, oracle) in &oracles {
        let mut saved = 0usize;
        let mut total = 0usize;
        let mut equivalent = true;
        for seed in 0..30u64 {
            let (arena, hm, bad, s0) = scenario(seed, 20);
            let aug = AugmentedHistory::execute(&arena, &hm, &s0).unwrap();
            let rw = rewrite(
                &arena,
                &aug,
                &bad,
                RewriteAlgorithm::CanFollowCanPrecede,
                FixMode::Lemma1,
                oracle.as_ref(),
            );
            saved += rw.saved().len();
            total += hm.len() - 2;
            let replay = AugmentedHistory::execute_with_fixes(&arena, rw.entries(), &s0).unwrap();
            equivalent &= replay.final_state_equivalent(&aug);
        }
        table.row_owned(vec![
            label.to_string(),
            fmt(saved as f64 / 30.0, 2),
            fmt(total as f64 / 30.0, 0),
            equivalent.to_string(),
        ]);
        assert!(equivalent, "oracle `{label}` broke final-state equivalence");
    }
    table.print();
    println!(
        "\nEach richer back-end saves strictly more: the static analyzer adds\n\
         class-level commutativity, the declared tables add the correlated-guard\n\
         promotions only offline (canned) knowledge can certify — all while keeping\n\
         every rewritten history final-state equivalent."
    );
}
