//! E4 — Theorem 4 and the Section 5 motivation: saved transactions per
//! rewriting algorithm as the workload's commutativity varies.
//!
//! For each commutative fraction, generates many conflicting scenarios and
//! reports the mean number of tentative transactions each rewriter saves.
//! Checks the paper's dominance claims on every single instance:
//! `RFTC = Alg1 ⊆ Alg2` (Theorems 3, 2) and `CBTR ⊆ Alg2` (Theorem 4).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_theorem4`

use std::collections::BTreeSet;

use histmerge_bench::{artifact_json, fmt, write_artifact, Table};
use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::backout::affected_weight;
use histmerge_history::{AugmentedHistory, BackoutStrategy, PrecedenceGraph, TwoCycleOptimal};
use histmerge_semantics::StaticAnalyzer;
use histmerge_txn::TxnId;
use histmerge_workload::generator::{generate, ScenarioParams};

fn main() {
    let seeds = 0u64..40;
    let mut table = Table::new(&[
        "commutative",
        "scenarios",
        "hm_len",
        "rftc",
        "alg1",
        "cbtr",
        "alg2",
        "alg2 gain vs rftc",
    ]);
    let oracle = StaticAnalyzer::new();

    for commutative in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut n_scen = 0usize;
        let mut sums = [0usize; 4];
        for seed in seeds.clone() {
            let params = ScenarioParams {
                n_vars: 32,
                n_tentative: 16,
                n_base: 10,
                commutative_fraction: commutative,
                guarded_fraction: 0.15 * (1.0 - commutative),
                read_only_fraction: 0.05,
                hot_fraction: 0.15,
                hot_prob: 0.55,
                seed,
                ..ScenarioParams::default()
            };
            let sc = generate(&params);
            let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
            let weight = affected_weight(&sc.arena, &sc.hm);
            let bad = TwoCycleOptimal::new().compute(&graph, &weight).unwrap();
            if bad.is_empty() {
                continue;
            }
            n_scen += 1;
            let aug = AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap();
            let algorithms = [
                RewriteAlgorithm::ReadsFromClosure,
                RewriteAlgorithm::CanFollow,
                RewriteAlgorithm::CommutesBackward,
                RewriteAlgorithm::CanFollowCanPrecede,
            ];
            let mut saved: Vec<BTreeSet<TxnId>> = Vec::new();
            for (i, alg) in algorithms.iter().enumerate() {
                let rw = rewrite(&sc.arena, &aug, &bad, *alg, FixMode::Lemma1, &oracle);
                sums[i] += rw.saved().len();
                saved.push(rw.saved().into_iter().collect());
            }
            // Theorem 3: RFTC == Alg1.
            assert_eq!(saved[0], saved[1], "Theorem 3 violated at seed {seed}");
            // Theorem 4: CBTR ⊆ Alg2; and Alg1 ⊆ Alg2.
            assert!(saved[2].is_subset(&saved[3]), "Theorem 4 violated at seed {seed}");
            assert!(saved[1].is_subset(&saved[3]), "Alg1 ⊄ Alg2 at seed {seed}");
        }
        let mean = |s: usize| fmt(s as f64 / n_scen.max(1) as f64, 2);
        let gain = (sums[3] as f64 - sums[0] as f64) / n_scen.max(1) as f64;
        table.row_owned(vec![
            fmt(commutative, 1),
            n_scen.to_string(),
            "16".into(),
            mean(sums[0]),
            mean(sums[1]),
            mean(sums[2]),
            mean(sums[3]),
            format!("+{}", fmt(gain, 2)),
        ]);
    }

    println!("E4: mean saved tentative transactions per merge (40 seeds each)\n");
    table.print();
    println!("\nInvariants checked on every instance: RFTC = Alg1 ⊆ Alg2, CBTR ⊆ Alg2.");

    let json = artifact_json("exp_theorem4", &[("commutativity_sweep", &table)]);
    println!("artifact: {}", write_artifact("exp_theorem4", &json).display());
}
