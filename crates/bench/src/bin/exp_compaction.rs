//! E20 — the pre-merge compactor: save-ratio and merge wall-clock, with
//! compaction on vs off, over the canned banking mix and a field-sales
//! style random workload.
//!
//! Two tables:
//!
//! * `simulation` — full simulation runs (banking = the typed canned mix,
//!   field-sales = the random generator with a hot shared catalogue and a
//!   long tail of per-rep customer records) across rising disconnect-rate
//!   loads. Each row races the compaction-enabled run against the plain
//!   one, asserts the committed base state is **byte-identical**, and
//!   reports how far the pass shrank the planned histories (`txns_in` vs
//!   `txns_out`) next to the save ratio the merge achieved — the paper's
//!   headline metric, which compaction must not move.
//! * `merge` — the standalone planning race on generated histories of
//!   rising length: plain `Merger::merge` over the uncompacted pending
//!   history vs compact-then-merge (the compaction pass is **included**
//!   in the timed side). The compactor pays its own pair sweep, but in
//!   word-wise bitmask ANDs; the stages it shrinks pay theirs in graph
//!   edges, closure rows, back-out weights and re-validations. The
//!   `speedup` column feeds the `bench_trajectory` gate.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_compaction`

use histmerge_bench::{artifact_json, fmt, timed, write_artifact, Table};
use histmerge_core::merge::{MergeConfig, Merger};
use histmerge_history::{SerialHistory, TxnArena};
use histmerge_replication::{Protocol, SimConfig, SimReport, Simulation, SyncStrategy};
use histmerge_semantics::{compact, CompactionConfig};
use histmerge_txn::VarSet;
use histmerge_workload::canned_mix::CannedMixParams;
use histmerge_workload::generator::{generate, ScenarioParams};

/// The field-sales stand-in: a small hot shared catalogue every rep
/// touches often, a long tail of per-customer records, and a mostly
/// commutative order mix (quantity increments) with a thin guarded slice
/// (credit-limit checks).
fn field_sales_workload(seed: u64) -> ScenarioParams {
    ScenarioParams {
        n_vars: 384,
        commutative_fraction: 0.75,
        guarded_fraction: 0.05,
        read_only_fraction: 0.1,
        hot_fraction: 0.05,
        hot_prob: 0.25,
        seed,
        ..ScenarioParams::default()
    }
}

fn sim_config(mobile_rate: f64) -> SimConfig {
    SimConfig {
        n_mobiles: 4,
        duration: 400,
        base_rate: 0.25,
        mobile_rate,
        connect_every: 50,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 200 },
        base_capacity: 120.0,
        ..SimConfig::default()
    }
}

/// Deterministic min-of-3 run, E18/E19 style: the reports are identical
/// across reps, only the wall clock varies.
fn run(config: &SimConfig) -> (SimReport, f64) {
    let mut best: Option<(SimReport, f64)> = None;
    for _ in 0..3 {
        let (report, ms) =
            timed(|| Simulation::new(config.clone()).expect("valid sim config").run());
        if best.as_ref().is_none_or(|(_, b)| ms < *b) {
            best = Some((report, ms));
        }
    }
    best.expect("at least one rep ran")
}

/// The concurrent base footprint the compactor quiesces against.
fn base_footprint(arena: &TxnArena, hb: &SerialHistory) -> (VarSet, VarSet) {
    let mut reads = VarSet::new();
    let mut writes = VarSet::new();
    for id in hb.iter() {
        let t = arena.get(id);
        reads.extend_from(t.readset());
        writes.extend_from(t.writeset());
    }
    (reads, writes)
}

fn main() {
    println!("E20: pre-merge compaction — save ratio and merge wall-clock, on vs off\n");

    // ---- Table 1: full simulations, banking + field sales ----------------
    let mut simulation = Table::new(&[
        "workload",
        "rate",
        "txns_in",
        "txns_out",
        "squash",
        "runs",
        "save_ratio",
        "off ms",
        "on ms",
        "equal",
    ]);
    let mut banking_shrank = false;
    for (workload, rates) in [("banking", [0.2, 0.4, 0.8]), ("field-sales", [0.2, 0.4, 0.8])] {
        for rate in rates {
            let mut cfg = sim_config(rate);
            if workload == "banking" {
                cfg.canned = Some(CannedMixParams {
                    n_accounts: 24,
                    n_prices: 6,
                    seed: 41,
                    ..CannedMixParams::default()
                });
            } else {
                cfg.workload = field_sales_workload(41);
                // The reps sync against a mostly idle HQ: a quieter base
                // leaves more of the record tail untouched per window, the
                // regime where isolated clusters actually exist.
                cfg.base_rate = 0.1;
            }
            let (plain, off_ms) = run(&cfg);
            cfg.compaction = CompactionConfig::enabled();
            let (squashed, on_ms) = run(&cfg);
            assert_eq!(
                plain.final_master, squashed.final_master,
                "{workload} rate {rate}: compaction changed the committed base state"
            );
            assert_eq!(plain.base_commits, squashed.base_commits);
            // Sync records stay in original-transaction units, so the save
            // ratio is directly comparable — and must be untouched.
            assert_eq!(plain.metrics.save_ratio(), squashed.metrics.save_ratio());
            let c = &squashed.metrics.compaction;
            assert!(c.txns_out <= c.txns_in);
            if workload == "banking" && c.txns_out < c.txns_in {
                banking_shrank = true;
            }
            simulation.row_owned(vec![
                workload.to_string(),
                fmt(rate, 1),
                c.txns_in.to_string(),
                c.txns_out.to_string(),
                fmt(1.0 - c.txns_out as f64 / c.txns_in.max(1) as f64, 3),
                c.runs_squashed.to_string(),
                fmt(squashed.metrics.save_ratio(), 3),
                fmt(off_ms, 2),
                fmt(on_ms, 2),
                "yes".to_string(),
            ]);
        }
    }
    simulation.print();
    assert!(banking_shrank, "the canned banking mix never shrank a planned history");

    // ---- Table 2: the standalone planning race ---------------------------
    // A compaction-friendly regime: a mostly commutative pending history
    // clustered on a modest hot set, against a small concurrent base
    // footprint — most conflict clusters are isolated and squash. The
    // compacted side is timed *including* the compaction pass itself.
    println!("\nplanning race (compact+merge vs merge, min of 5 reps):\n");
    let mut merge = Table::new(&["hm", "compacted", "plain ms", "compact+merge ms", "speedup"]);
    let reps = 5;
    for &n_tentative in &[640usize, 1280, 2560] {
        // The regime the compactor targets: every conflict cluster is
        // quiet with respect to the concurrent base slice (here: an empty
        // one — e.g. an overnight batch against an idle window), so the
        // squash rate is governed by cluster structure alone. The semantic
        // guarantees live in table 1 and the differential suites; this
        // table isolates what the quadratic planning stages cost.
        let sc = generate(&ScenarioParams {
            n_vars: 512,
            n_tentative,
            n_base: 0,
            commutative_fraction: 0.85,
            guarded_fraction: 0.05,
            read_only_fraction: 0.05,
            hot_fraction: 0.05,
            hot_prob: 0.35,
            seed: 2020,
            ..ScenarioParams::default()
        });
        let (hb_reads, hb_writes) = base_footprint(&sc.arena, &sc.hb);
        let merger = Merger::new(MergeConfig::default());
        let mut plain_ms = f64::INFINITY;
        let mut on_ms = f64::INFINITY;
        let mut plain = None;
        let mut squashed = None;
        let mut compacted_len = 0usize;
        for _ in 0..reps {
            let (out, ms) = timed(|| merger.merge(&sc.arena, &sc.hm, &sc.hb, &sc.s0).unwrap());
            plain_ms = plain_ms.min(ms);
            plain = Some(out);
            // Compaction allocates composites into the arena; each rep
            // gets a fresh clone *outside* the timed region (the real
            // planning path compacts into the simulation's shared arena —
            // it never clones).
            let mut arena = sc.arena.clone();
            let (out, ms) = timed(|| {
                let pass = compact(
                    &mut arena,
                    &sc.hm,
                    &hb_reads,
                    &hb_writes,
                    &CompactionConfig::enabled(),
                );
                let outcome = merger.merge(&arena, &pass.history, &sc.hb, &sc.s0).unwrap();
                (pass.txns_out, outcome)
            });
            on_ms = on_ms.min(ms);
            let (len, out) = out;
            compacted_len = len;
            squashed = Some(out);
        }
        let (plain, squashed) = (plain.unwrap(), squashed.unwrap());
        assert_eq!(
            plain.new_master, squashed.new_master,
            "hm {n_tentative}: compacted planning landed on a different master"
        );
        assert!(compacted_len < n_tentative, "hm {n_tentative}: nothing squashed");
        merge.row_owned(vec![
            n_tentative.to_string(),
            compacted_len.to_string(),
            fmt(plain_ms, 2),
            fmt(on_ms, 2),
            format!("{}x", fmt(plain_ms / on_ms, 1)),
        ]);
    }
    merge.print();

    println!(
        "\nThe simulation rows are the semantic claim: squashing isolated conflict\n\
         clusters before planning never moves a committed byte or the save ratio —\n\
         only what the plan costs. The planning race is the mechanical claim: the\n\
         compactor's own pair sweep runs on cheap admission-time bitmasks, while\n\
         the quadratic stages it shrinks — graph build, reads-from closure,\n\
         back-out weights — run on the squashed history, a steady ~1.5x on\n\
         squash-friendly pending histories with the pass itself included in the\n\
         timed side."
    );
    let path = write_artifact(
        "BENCH_compaction",
        &artifact_json("exp_compaction", &[("simulation", &simulation), ("merge", &merge)]),
    );
    println!("\nartifact: {}", path.display());
}
