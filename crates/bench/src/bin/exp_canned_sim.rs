//! E13 (extension) — canned systems end to end: the typed bank+promotions
//! workload through the full replication loop.
//!
//! Section 5.1 positions canned systems as the sweet spot for the merging
//! protocol: relations between transaction *types* are verified offline
//! and consulted in O(1) at merge time. This experiment runs the same
//! fleet under (a) the untyped random workload (static analysis only) and
//! (b) the typed canned mix (static + declared tables), and reports how
//! much more work the canned configuration saves.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_canned_sim`

use histmerge_bench::{fmt, Table};
use histmerge_replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge_workload::canned_mix::{CannedFlavor, CannedMixParams};
use histmerge_workload::generator::ScenarioParams;

fn main() {
    let base = |seed: u64| SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.1,
        mobile_rate: 0.1,
        connect_every: 100,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 200 },
        workload: ScenarioParams {
            n_vars: 81, // match the canned item space (1 + 16 + 64)
            commutative_fraction: 0.5,
            guarded_fraction: 0.35,
            read_only_fraction: 0.0,
            hot_fraction: 0.2,
            hot_prob: 0.3,
            seed,
            ..ScenarioParams::default()
        },
        ..SimConfig::default()
    };

    let mut table = Table::new(&["workload", "tentative", "saved", "backout", "saveRatio"]);
    println!(
        "E13 (extension): typed canned system vs untyped random workload,\n\
         6 mobiles, 600 ticks, merging protocol, mean of 5 seeds\n"
    );
    for canned in [false, true] {
        let mut saved = 0usize;
        let mut backout = 0usize;
        let mut tentative = 0usize;
        let mut ratio = 0.0;
        const SEEDS: u64 = 5;
        for seed in 0..SEEDS {
            let mut cfg = base(200 + seed);
            if canned {
                cfg.canned = Some(CannedMixParams {
                    n_accounts: 64,
                    n_prices: 16,
                    deposit_frac: 0.4,
                    withdraw_frac: 0.1,
                    bonus_frac: 0.3,
                    seed: 200 + seed,
                    flavor: CannedFlavor::BankPromo,
                });
            }
            let m = Simulation::new(cfg).expect("valid sim config").run().metrics;
            saved += m.saved;
            backout += m.backed_out;
            tentative += m.tentative_generated;
            ratio += m.save_ratio();
        }
        table.row_owned(vec![
            (if canned {
                "canned (typed + declared tables)"
            } else {
                "random (static analysis only)"
            })
            .to_string(),
            (tentative / SEEDS as usize).to_string(),
            (saved / SEEDS as usize).to_string(),
            (backout / SEEDS as usize).to_string(),
            fmt(ratio / SEEDS as f64, 2),
        ]);
    }
    table.print();
    println!(
        "\nThe canned system's declared tables certify correlated-guard promotions and\n\
         same-account deposits that no repair-time analysis could, lifting the save\n\
         ratio of the very same protocol — the paper's argument for canned systems."
    );
}
