//! E2 — Figure 2 / Section 2.2: Strategy 1 vs Strategy 2.
//!
//! Simulates a fleet of mobile nodes under both synchronization strategies
//! and a sweep of Strategy-2 window lengths, reporting merge failures
//! (Strategy 1's snapshot invalidation), window misses, and back-out
//! volume (the Strategy-2 trade-off the paper's resynchronization rule
//! manages).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_sync_strategies`

use histmerge_bench::{fmt, Table};
use histmerge_replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge_workload::generator::ScenarioParams;

fn main() {
    let workload = ScenarioParams {
        n_vars: 48,
        commutative_fraction: 0.4,
        guarded_fraction: 0.2,
        read_only_fraction: 0.1,
        hot_fraction: 0.08,
        hot_prob: 0.6,
        seed: 7,
        ..ScenarioParams::default()
    };
    let config = |strategy: SyncStrategy, seed: u64| SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 60,
        protocol: Protocol::merging_default(),
        strategy,
        workload: ScenarioParams { seed, ..workload.clone() },
        ..SimConfig::default()
    };

    let strategies: Vec<(String, SyncStrategy)> = vec![
        ("strategy1".into(), SyncStrategy::PerDisconnectSnapshot),
        ("strategy2 w=75".into(), SyncStrategy::WindowStart { window: 75 }),
        ("strategy2 w=150".into(), SyncStrategy::WindowStart { window: 150 }),
        ("strategy2 w=300".into(), SyncStrategy::WindowStart { window: 300 }),
        ("strategy2 w=600".into(), SyncStrategy::WindowStart { window: 600 }),
        ("strategy2 adaptive hb<=40".into(), SyncStrategy::AdaptiveWindow { max_hb: 40 }),
        ("strategy2 adaptive hb<=80".into(), SyncStrategy::AdaptiveWindow { max_hb: 80 }),
    ];

    let mut table = Table::new(&[
        "strategy",
        "saved",
        "backout",
        "reproc",
        "mergeFail",
        "winMiss",
        "saveRatio",
    ]);
    for (label, strategy) in strategies {
        // Average over 5 seeds.
        let mut agg = [0usize; 5];
        let mut ratio = 0.0;
        const SEEDS: u64 = 5;
        for seed in 0..SEEDS {
            let m = Simulation::new(config(strategy, 7 + seed))
                .expect("valid sim config")
                .run()
                .metrics;
            agg[0] += m.saved;
            agg[1] += m.backed_out;
            agg[2] += m.reprocessed;
            agg[3] += m.merge_failures;
            agg[4] += m.window_misses;
            ratio += m.save_ratio();
        }
        table.row_owned(vec![
            label,
            (agg[0] / SEEDS as usize).to_string(),
            (agg[1] / SEEDS as usize).to_string(),
            (agg[2] / SEEDS as usize).to_string(),
            (agg[3] / SEEDS as usize).to_string(),
            (agg[4] / SEEDS as usize).to_string(),
            fmt(ratio / SEEDS as f64, 3),
        ]);
    }

    println!("E2: synchronization strategies (6 mobiles, 600 ticks, mean of 5 seeds)\n");
    table.print();
    println!(
        "\nStrategy 1 loses merges to retroactive snapshot invalidation (mergeFail > 0);\n\
         Strategy 2 never fails a merge but trades window misses (short windows)\n\
         against back-out volume (long windows) — Section 2.2's resynchronization rule.\n\
         The adaptive variant bounds per-merge back-out sharply (compare its backout\n\
         column) but closes windows faster than mobiles reconnect under base load,\n\
         spiking misses — the max_hb bound must be calibrated to connect intervals."
    );
}
