//! E21 — reconnect storms under base-side admission control.
//!
//! A fleet-wide `ConnectivityModel::OutageStorm` knocks every link down
//! for `outage` ticks; each mobile whose reconnect cadence lands inside
//! the window slides to the first up tick, so the storm's end is a
//! thundering herd: a reconnect cohort approaching the whole fleet in a
//! single tick. Under the merging protocol that cohort is the worst
//! input the base can see — same-tick installs pay for each other's
//! delta validation quadratically (E19's honest finding).
//!
//! The sweep crosses outage length with admission policy:
//!
//! * `uncapped` — the pre-admission behaviour: the whole herd merges in
//!   one tick (`batch_max` ~ fleet);
//! * `capN` — `AdmissionConfig::bounded(N)`: at most `N` merges per
//!   tick, the excess shed into the deterministic deferred FIFO and
//!   drained ahead of fresh arrivals on the following ticks.
//!
//! Reported per cell: the peak cohort, how many reconnects were shed,
//! the p99 admission wait (over *all* syncs — a sync that was never
//! deferred waited 0 ticks), the worst wait, and throughput. The
//! assertions are the acceptance bar:
//!
//! 1. bounded cohorts never exceed the cap, uncapped ones really see the
//!    herd (`batch_max` grows with the outage);
//! 2. the deferred queue drains: after the storm the slid cohort stays
//!    roughly cadence-synchronized, so reconnect waves recur for the
//!    rest of the run and a wave landing near the horizon is still
//!    draining when the run ends — the bar is that the residue
//!    (`shed - deferred_drained`) is at most one cohort's worth, and
//!    the p99 wait stays within the drain window `ceil(fleet / cap)`;
//! 3. admission costs latency, not work: the bounded run never commits
//!    less than the uncapped run (deferral shifts *when* a sync lands,
//!    which can move a handful of horizon-edge transactions either way,
//!    so the bar is a 0.5% one-sided floor, not byte equality) and every
//!    cell converges.
//!
//! `EXP_STORM_SMOKE=1` shrinks the fleet and drops the longest outage —
//! CI runs that mode on every PR and gates on the emitted
//! `BENCH_storm.json` (see `bench_trajectory`).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_storm`

use histmerge_bench::{artifact_json, fmt, timed, write_artifact, Table};
use histmerge_replication::{
    AdmissionConfig, ConnectivityModel, Protocol, RetryBackoff, SchedulerMode, SimConfig,
    SimReport, Simulation, SyncPath, SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

const STORM_START: u64 = 100;
const SURGE_TICKS: u64 = 40;
const CAP: usize = 8;

fn config(fleet: usize, outage: u64, admission: AdmissionConfig) -> SimConfig {
    SimConfig {
        n_mobiles: fleet,
        duration: 600,
        base_rate: 0.2,
        mobile_rate: 0.05,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 192,
            commutative_fraction: 0.7,
            guarded_fraction: 0.1,
            read_only_fraction: 0.1,
            hot_fraction: 0.05,
            hot_prob: 0.1,
            seed: 2108,
            ..ScenarioParams::default()
        },
        base_capacity: 10_000.0,
        sync_path: SyncPath::Session,
        scheduler: SchedulerMode::EventQueue,
        backlog_sample_every: 0,
        connectivity: ConnectivityModel::OutageStorm {
            start: STORM_START,
            outage_ticks: outage,
            surge_ticks: SURGE_TICKS,
            fault_boost: 1.0,
        },
        admission,
        check_convergence: true,
        ..SimConfig::default()
    }
}

/// Min-of-`reps` wall clock, same discipline as E18/E19: the runs are
/// deterministic, so the reports are identical and only timing varies.
/// The uncapped herd cells cost tens of seconds each, so the full sweep
/// uses two reps (smoke mode one) rather than E19's three.
fn run(config: SimConfig, reps: usize) -> (SimReport, f64) {
    let mut best: Option<(SimReport, f64)> = None;
    for _ in 0..reps {
        let (report, ms) =
            timed(|| Simulation::new(config.clone()).expect("valid sim config").run());
        if best.as_ref().is_none_or(|(_, b)| ms < *b) {
            best = Some((report, ms));
        }
    }
    best.expect("at least one rep ran")
}

/// The p99 admission wait over the whole sync population: `defer_waits`
/// holds one entry per *deferred* sync, every other sync waited zero
/// ticks, so the vector is zero-padded to `syncs` before ranking.
fn p99_wait(waits: &[u64], syncs: usize) -> u64 {
    let total = syncs.max(waits.len());
    if total == 0 {
        return 0;
    }
    let mut sorted = waits.to_vec();
    sorted.sort_unstable();
    let rank = (total as f64 * 0.99).ceil() as usize; // 1-based over the padded population
    let zeros = total - sorted.len();
    if rank <= zeros {
        0
    } else {
        sorted[rank - zeros - 1]
    }
}

fn main() {
    let smoke = std::env::var_os("EXP_STORM_SMOKE").is_some();
    // Smoke mode keeps the fleet (so its rows share keys with a
    // full-mode baseline and the trajectory gate compares them) and
    // drops the longer outages instead.
    let fleet: usize = 300;
    let outages: &[u64] = if smoke { &[30] } else { &[30, 60, 120] };
    let reps = if smoke { 1 } else { 2 };

    println!(
        "E21: reconnect storms under admission control ({fleet} mobiles, storm at tick \
         {STORM_START}{})\n",
        if smoke { ", smoke mode" } else { "" }
    );

    let mut table = Table::new(&[
        "scenario",
        "batch_max",
        "shed",
        "drained",
        "defer_peak",
        "p99_wait",
        "wait_max",
        "syncs",
        "commits",
        "saved",
        "merges_per_sec",
        "wall_ms",
    ]);

    for &outage in outages {
        let mut uncapped_commits = 0usize;
        let mut uncapped_resolved = 0usize;
        for (label, admission) in
            [("uncapped", AdmissionConfig::unbounded()), ("cap", AdmissionConfig::bounded(CAP))]
        {
            let mut cfg = config(fleet, outage, admission);
            cfg.session.backoff = RetryBackoff::enabled();
            let scenario = if label == "cap" {
                format!("o{outage}-cap{CAP}")
            } else {
                format!("o{outage}-uncapped")
            };
            let (report, ms) = run(cfg, reps);
            eprintln!("  [{scenario}] done in {ms:.0} ms/rep");
            let m = &report.metrics;
            let convergence = report.convergence.expect("oracle requested");
            assert!(convergence.holds(), "{scenario}: oracle failed: {convergence:?}");

            let batch_max = m.batch_sizes.iter().max().copied().unwrap_or(0);
            let storm = m.storm;
            let p99 = p99_wait(&m.defer_waits, m.syncs);
            let resolved = m.saved + m.reprocessed + m.backed_out;

            if label == "cap" {
                // Bar 1: the cap really bounds every cohort.
                assert!(
                    m.batch_sizes.iter().all(|&b| b <= CAP),
                    "{scenario}: cohort exceeded the cap ({batch_max} > {CAP})"
                );
                // Bar 2: the queue drains. Post-storm reconnect waves
                // recur every cadence, so the final wave may still be
                // draining at the horizon — tolerate at most one
                // cohort's worth of residue, never a growing backlog.
                let residue = storm.shed - storm.deferred_drained;
                assert!(
                    residue <= 2 * CAP as u64,
                    "{scenario}: deferred queue left {residue} residue \
                     (shed {}, drained {})",
                    storm.shed,
                    storm.deferred_drained
                );
                assert!(storm.shed > 0, "{scenario}: the storm never engaged admission");
                let drain_window = fleet.div_ceil(CAP) as u64;
                assert!(
                    p99 <= drain_window,
                    "{scenario}: p99 wait {p99} beyond the drain window {drain_window}"
                );
                // Bar 3: latency, not lost work. Deferral shifts sync
                // timing, which can move a handful of horizon-edge
                // transactions into or out of the run in either
                // direction, so the bar is a tight one-sided floor: the
                // bounded run never commits (or resolves) meaningfully
                // less than the uncapped run.
                assert!(
                    report.base_commits as f64 >= 0.995 * uncapped_commits as f64,
                    "{scenario}: admission reduced commits ({} vs uncapped {uncapped_commits})",
                    report.base_commits
                );
                assert!(
                    resolved as f64 >= 0.995 * uncapped_resolved as f64,
                    "{scenario}: admission reduced resolved work \
                     ({resolved} vs uncapped {uncapped_resolved})"
                );
            } else {
                // The herd is real: the whole slid cohort lands at once.
                assert!(
                    batch_max > CAP,
                    "{scenario}: no herd formed (batch_max {batch_max} <= cap {CAP})"
                );
                assert_eq!(storm.shed, 0, "{scenario}: unbounded admission shed a reconnect");
                uncapped_commits = report.base_commits;
                uncapped_resolved = resolved;
            }

            table.row_owned(vec![
                scenario,
                batch_max.to_string(),
                storm.shed.to_string(),
                storm.deferred_drained.to_string(),
                storm.deferred_peak.to_string(),
                p99.to_string(),
                storm.defer_wait_max.to_string(),
                m.syncs.to_string(),
                report.base_commits.to_string(),
                m.saved.to_string(),
                fmt(m.syncs as f64 / (ms / 1e3), 1),
                fmt(ms, 0),
            ]);
        }
    }
    table.print();

    println!(
        "\nAdmission control trades a bounded, predictable admission wait (p99 inside the\n\
         ceil(fleet/cap) drain window) for the uncapped herd's quadratic same-tick merge\n\
         cohort — and the trade is pure scheduling: the bounded runs commit and resolve\n\
         at least what the uncapped runs do, storm or no storm."
    );

    let json = artifact_json("exp_storm", &[("storm", &table)]);
    println!("\nartifact: {}", write_artifact("BENCH_storm", &json).display());
}

#[cfg(test)]
mod tests {
    use super::p99_wait;

    #[test]
    fn p99_ranks_over_the_zero_padded_population() {
        // 100 syncs, one deferred for 7 ticks: rank 99 is still a zero.
        assert_eq!(p99_wait(&[7], 100), 0);
        // 100 syncs, two deferred: rank 99 lands on the smaller wait.
        assert_eq!(p99_wait(&[7, 3], 100), 3);
        // Every sync deferred: rank 99 of 100 is the second-largest.
        let waits: Vec<u64> = (1..=100).collect();
        assert_eq!(p99_wait(&waits, 100), 99);
        // Degenerate cases.
        assert_eq!(p99_wait(&[], 0), 0);
        assert_eq!(p99_wait(&[], 50), 0);
    }
}
