//! E22 — fleet-telemetry overhead and merge-autopsy coverage.
//!
//! Two questions about the PR-9 telemetry layer (per-tick time series,
//! merge autopsies, exporters):
//!
//! 1. **What does the collector cost?** The E17 durable-session harness
//!    is timed under the no-op tracer (telemetry off) and with the full
//!    telemetry stack enabled — flight-recorder ring, per-tick
//!    `TimeSeries`, and autopsy emission. Two independent no-op batches
//!    bound the measurement noise; the acceptance bar is telemetry
//!    overhead under 5%.
//! 2. **Do autopsies explain every casualty?** A reconnect-storm run
//!    (E21's `OutageStorm` shape over a deliberately hot item space)
//!    forces window-miss reprocessing and merge back-outs, and every
//!    backed-out or reprocessed transaction must carry a *concrete*
//!    conflict edge — a named partner transaction — in its autopsy.
//!    Asserted over the full population, not sampled.
//!
//! Every telemetry-enabled run is audited the E17 way:
//! `Metrics::normalized()` must be byte-identical to the plain run —
//! telemetry is observation-only.
//!
//! Artifacts: the usual `exp_telemetry.json` tables, plus the storm
//! run's raw telemetry for `obs_report` and CI uploads — the ring dump
//! (`exp_telemetry.trace.jsonl`), the time-series dump
//! (`exp_telemetry.timeseries.json`), the metrics JSON, and a Prometheus
//! text-format exposition (`exp_telemetry.prom`).
//!
//! `EXP_TELEMETRY_SMOKE=1` shrinks the fleet and the rep count for CI.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_telemetry`

use std::sync::Arc;
use std::time::Instant;

use histmerge_bench::{artifact_json, experiments_path, fmt, write_artifact, Table};
use histmerge_obs::{export, FlightRecorder, TimeSeries, TracerHandle};
use histmerge_replication::{
    AdmissionConfig, ConnectivityModel, DurabilityConfig, FaultPlan, Protocol, SchedulerMode,
    SimConfig, SimReport, Simulation, SyncPath, SyncStrategy, TelemetryConfig,
};
use histmerge_workload::generator::ScenarioParams;

/// Interleaved rounds per overhead batch ([`overhead_part`] runs three
/// independent batches and takes their median estimate).
fn reps() -> usize {
    let fallback = if smoke() { 12 } else { 16 };
    std::env::var("E22_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(fallback)
}

fn smoke() -> bool {
    std::env::var_os("EXP_TELEMETRY_SMOKE").is_some()
}

// ---------------------------------------------------------------------
// Part 1: collector overhead on the E17 durable-session harness.
// ---------------------------------------------------------------------

fn overhead_config(seed: u64, tracer: TracerHandle, telemetry: TelemetryConfig) -> SimConfig {
    SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 60,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.08,
            hot_prob: 0.6,
            seed,
            ..ScenarioParams::default()
        },
        sync_path: SyncPath::Session,
        fault: FaultPlan::none(),
        check_convergence: true,
        durability: DurabilityConfig { enabled: true, checkpoint_every: 128 },
        tracer,
        telemetry,
        ..SimConfig::default()
    }
}

fn run_once(tracer: TracerHandle, telemetry: TelemetryConfig) -> (f64, SimReport) {
    let sim = Simulation::new(overhead_config(7, tracer, telemetry)).expect("valid sim config");
    let started = Instant::now();
    let report = sim.run();
    (started.elapsed().as_secs_f64() * 1e3, report)
}

type ModeFactory<'a> = &'a dyn Fn() -> (TracerHandle, TelemetryConfig);

/// This process's cumulative CPU time (user + system) in clock ticks
/// (10ms on Linux), from `/proc/self/stat`. `None` off Linux or when
/// the fields fail to parse. CPU time excludes preemption and
/// hypervisor steal, which makes batch totals far more stable than
/// wall clocks on shared single-core CI hosts.
fn cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field (2) may contain spaces; fields are positional only
    // after its closing parenthesis.
    let rest = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?; // field 14
    let stime: u64 = fields.get(12)?.parse().ok()?; // field 15
    Some(utime + stime)
}

/// One mode's measurements: per-round wall-clock samples (index =
/// round), the mode's total CPU ticks across every rep (when the
/// platform exposes them), and the last rep's report.
struct ModeStats {
    wall_ms: Vec<f64>,
    cpu: Option<u64>,
    report: SimReport,
}

/// Wall-clock milliseconds and batch CPU totals per mode, measured
/// interleaved with a rotating start mode and two warmups — the same
/// discipline as E17 (see `exp_observability` for the rationale).
fn measure(modes: &[(&str, ModeFactory)]) -> Vec<ModeStats> {
    let n = modes.len();
    let mut samples: Vec<Vec<f64>> = modes.iter().map(|_| Vec::new()).collect();
    let mut cpu_totals: Vec<Option<u64>> = modes.iter().map(|_| Some(0)).collect();
    let mut last: Vec<Option<SimReport>> = modes.iter().map(|_| None).collect();
    for _ in 0..2 {
        run_once(TracerHandle::noop(), TelemetryConfig::default());
    }
    for round in 0..reps() {
        for k in 0..n {
            let i = (round + k) % n;
            let (factory_tracer, factory_telemetry) = (modes[i].1)();
            let before = cpu_ticks();
            let (ms, report) = run_once(factory_tracer, factory_telemetry);
            let after = cpu_ticks();
            cpu_totals[i] = match (cpu_totals[i], before, after) {
                (Some(total), Some(b), Some(a)) => Some(total + (a - b)),
                _ => None,
            };
            samples[i].push(ms);
            last[i] = Some(report);
        }
    }
    samples
        .into_iter()
        .zip(cpu_totals)
        .zip(last)
        .map(|((wall_ms, cpu), report)| ModeStats {
            wall_ms,
            cpu,
            report: report.expect("at least one rep"),
        })
        .collect()
}

/// The median of a non-empty sample list.
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    sorted[sorted.len() / 2]
}

/// Median of the per-round paired overheads `100·(b_r − a_r)/a_r`.
///
/// Shared CI hosts show *sustained* noise — multi-second hypervisor
/// steal that inflates every run in a stretch by 10–15% — which defeats
/// batch-level statistics (medians and even floors of one mode can
/// catch a quiet or busy stretch the other never sees). Pairing within
/// a round cancels that: both runs sit in the same stretch, so the
/// sustained component divides out of the ratio, and the median over
/// rounds rejects the transient spikes that hit a single run.
fn paired_overhead(a: &[f64], b: &[f64]) -> f64 {
    let ratios: Vec<f64> = a.iter().zip(b).map(|(&a_r, &b_r)| 100.0 * (b_r - a_r) / a_r).collect();
    median(&ratios)
}

fn overhead_part() -> Table {
    let noop_mode: ModeFactory = &|| (TracerHandle::noop(), TelemetryConfig::default());
    let full_mode: ModeFactory = &|| (FlightRecorder::handle(4096), TelemetryConfig::full(1, 4096));
    let modes: [(&str, ModeFactory); 3] =
        [("noop", noop_mode), ("noop (rerun)", noop_mode), ("telemetry", full_mode)];
    // Three independent interleaved batches, each yielding one overhead
    // estimate; the assertions run on the batch medians, so a noisy
    // excursion must corrupt two of the three batches to move them.
    let mut spreads = Vec::new();
    let mut overheads = Vec::new();
    let mut quants = Vec::new();
    let mut table = Table::new(&["batch", "basis", "noopSpreadPct", "telemetryOverheadPct"]);
    for batch in 0..3 {
        let mut results = measure(&modes);
        let telemetry = results.pop().expect("three modes");
        let noop_b = results.pop().expect("three modes");
        let noop_a = results.pop().expect("three modes");

        // Observation-only audit: the telemetry-enabled run equals the
        // plain run byte-for-byte after stripping wall-clock fields.
        assert_eq!(
            noop_a.report.final_master, telemetry.report.final_master,
            "telemetry changed the final master"
        );
        assert_eq!(
            noop_a.report.metrics.normalized(),
            telemetry.report.metrics.normalized(),
            "telemetry perturbed the run"
        );

        // Primary basis: batch CPU-time totals, which exclude the
        // preemption and hypervisor steal that dominate wall-clock
        // noise on shared single-core CI hosts. The 10ms tick
        // quantization is why the comparison runs on whole-batch
        // totals, and why a batch under 50 ticks (0.5s of CPU) falls
        // back to paired wall clocks.
        let cpu_pct = |a: u64, b: u64| 100.0 * (b as f64 - a as f64) / a as f64;
        let (basis, noop_spread, telemetry_overhead, quant_pct) =
            match (noop_a.cpu, noop_b.cpu, telemetry.cpu) {
                (Some(a), Some(b), Some(t)) if a >= 50 => {
                    // Two clock ticks of the baseline total, in percent —
                    // the quantization granularity of the CPU basis.
                    ("cpu", cpu_pct(a, b).abs(), cpu_pct(a, t), 200.0 / a as f64)
                }
                _ => (
                    "wall",
                    paired_overhead(&noop_a.wall_ms, &noop_b.wall_ms).abs(),
                    paired_overhead(&noop_a.wall_ms, &telemetry.wall_ms),
                    0.0,
                ),
            };
        table.row_owned(vec![
            batch.to_string(),
            basis.into(),
            fmt(noop_spread, 2),
            fmt(telemetry_overhead, 2),
        ]);
        spreads.push(noop_spread);
        overheads.push(telemetry_overhead);
        quants.push(quant_pct);
    }
    table.print();

    let noop_spread = median(&spreads);
    let telemetry_overhead = median(&overheads);
    let quant = median(&quants);
    println!(
        "\ntelemetry overhead: {}% (median of three batches; noop spread {}%)",
        fmt(telemetry_overhead, 2),
        fmt(noop_spread, 2)
    );
    assert!(
        noop_spread < 5.0 + quant,
        "no-op spread {noop_spread:.2}% exceeds the 5% noise bound \
         (+{quant:.2}% tick quantization)"
    );
    // The acceptance bar, with the measured noise floor folded in so a
    // jittery CI host cannot flake a genuinely cheap collector.
    assert!(
        telemetry_overhead < 5.0 + noop_spread,
        "telemetry overhead {telemetry_overhead:.2}% exceeds the 5% target \
         (noise floor {noop_spread:.2}%)"
    );
    table
}

// ---------------------------------------------------------------------
// Part 2: autopsy coverage on a reconnect storm over a hot item space.
// ---------------------------------------------------------------------

fn storm_config(fleet: usize, tracer: TracerHandle, telemetry: TelemetryConfig) -> SimConfig {
    SimConfig {
        n_mobiles: fleet,
        duration: 600,
        base_rate: 1.0,
        mobile_rate: 0.05,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        // A deliberately hot item space: every transaction writes, and
        // most touch the hot set, so a reprocessed transaction always
        // has a committed base transaction to conflict with — the
        // concreteness assertion below leans on this.
        workload: ScenarioParams {
            n_vars: 16,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.0,
            hot_fraction: 0.25,
            hot_prob: 0.7,
            seed: 2209,
            ..ScenarioParams::default()
        },
        base_capacity: 10_000.0,
        sync_path: SyncPath::Session,
        scheduler: SchedulerMode::EventQueue,
        backlog_sample_every: 0,
        connectivity: ConnectivityModel::OutageStorm {
            start: 100,
            outage_ticks: 60,
            surge_ticks: 40,
            fault_boost: 1.0,
        },
        admission: AdmissionConfig::bounded(8),
        durability: DurabilityConfig { enabled: true, checkpoint_every: 256 },
        check_convergence: true,
        tracer,
        telemetry,
        ..SimConfig::default()
    }
}

fn storm_part() -> Table {
    let fleet = if smoke() { 60 } else { 150 };
    println!("\nstorm autopsy coverage ({fleet} mobiles, outage at tick 100):");

    // Plain reference run: telemetry must not perturb the storm either.
    let plain =
        Simulation::new(storm_config(fleet, TracerHandle::noop(), TelemetryConfig::default()))
            .expect("valid sim config")
            .run();

    let recorder = Arc::new(FlightRecorder::new(1 << 16));
    let tracer = TracerHandle::new(recorder.clone());
    let series = Arc::new(TimeSeries::new(1, 512));
    let telemetry = TelemetryConfig { series: Some(series.clone()), autopsy: true };
    let report = Simulation::new(storm_config(fleet, tracer.clone(), telemetry))
        .expect("valid sim config")
        .run();

    let convergence = report.convergence.as_ref().expect("oracle requested");
    assert!(convergence.holds(), "storm oracle failed: {convergence:?}");
    assert_eq!(plain.final_master, report.final_master, "telemetry changed the storm's master");
    assert_eq!(
        plain.metrics.normalized(),
        report.metrics.normalized(),
        "telemetry perturbed the storm run"
    );

    let m = &report.metrics;
    assert!(m.reprocessed > 0, "the storm forced no reprocessing — the scenario is broken");
    assert!(m.backed_out > 0, "the hot workload forced no back-outs — the scenario is broken");

    // The autopsy ledger: per-plan counts must reconcile exactly with
    // the end-of-run metrics (the run is fault-free, so every plan
    // resolves exactly once), and *every* casualty must be explained by
    // a concrete conflict edge naming the transaction it lost to.
    let autopsies = recorder.autopsies();
    assert!(!autopsies.is_empty(), "no autopsies assembled");
    let backed_out: usize = autopsies.iter().map(|a| a.backed_out).sum();
    let reprocessed: usize = autopsies.iter().map(|a| a.reprocessed).sum();
    assert_eq!(backed_out, m.backed_out, "autopsy back-out ledger disagrees with metrics");
    assert_eq!(reprocessed, m.reprocessed, "autopsy reprocess ledger disagrees with metrics");
    let mut backout_edges = 0usize;
    let mut reprocess_edges = 0usize;
    for autopsy in &autopsies {
        for edge in &autopsy.edges {
            assert!(
                edge.is_concrete(),
                "txn {} ({}, rule {}) at tick {} has no concrete conflict edge",
                edge.txn,
                edge.cause,
                edge.rule,
                autopsy.tick
            );
        }
        backout_edges += autopsy.backout_edges().count();
        reprocess_edges += autopsy.reprocess_edges().count();
    }

    // The time series filled and stayed bounded.
    assert!(!series.is_empty(), "the storm run recorded no time-series samples");
    assert!(series.len() <= series.capacity(), "the series outgrew its capacity");
    assert!(series.stride() > 1, "600 ticks into 512 slots must have downsampled");

    let mut table = Table::new(&[
        "fleet",
        "syncs",
        "saved",
        "backed_out",
        "reprocessed",
        "autopsies",
        "backout_edges",
        "reprocess_edges",
        "ts_samples",
        "ts_stride",
    ]);
    table.row_owned(vec![
        fleet.to_string(),
        m.syncs.to_string(),
        m.saved.to_string(),
        m.backed_out.to_string(),
        m.reprocessed.to_string(),
        autopsies.len().to_string(),
        backout_edges.to_string(),
        reprocess_edges.to_string(),
        series.len().to_string(),
        series.stride().to_string(),
    ]);
    table.print();
    println!(
        "every one of the {} autopsy edges names the concrete transaction it lost to",
        backout_edges + reprocess_edges
    );

    // Raw telemetry artifacts: the inputs `obs_report` turns into the
    // single-file HTML report, plus a Prometheus exposition.
    let trace = tracer.dump_jsonl().expect("ring retains events");
    std::fs::write(experiments_path("exp_telemetry.trace.jsonl"), trace).expect("write trace dump");
    std::fs::write(experiments_path("exp_telemetry.timeseries.json"), series.to_json())
        .expect("write time-series dump");
    std::fs::write(experiments_path("exp_telemetry.metrics.json"), m.to_json())
        .expect("write metrics dump");
    let snapshot = tracer.snapshot().expect("ring keeps a registry");
    let prom = export::prometheus_text(
        &[
            ("saved_total", m.saved as f64),
            ("backed_out_total", m.backed_out as f64),
            ("reprocessed_total", m.reprocessed as f64),
            ("syncs_total", m.syncs as f64),
            ("save_ratio", m.save_ratio()),
            ("peak_backlog", m.peak_backlog),
            ("base_commits_total", report.base_commits as f64),
            ("shed_total", m.storm.shed as f64),
            ("wal_bytes", m.wal.bytes as f64),
        ],
        Some(&snapshot),
    );
    std::fs::write(experiments_path("exp_telemetry.prom"), prom).expect("write prometheus dump");
    table
}

fn main() {
    println!(
        "E22: fleet-telemetry overhead and autopsy coverage{}\n",
        if smoke() { " (smoke mode)" } else { "" }
    );
    let overhead = overhead_part();
    let storm = storm_part();
    let json = artifact_json("exp_telemetry", &[("overhead", &overhead), ("storm", &storm)]);
    println!("\nartifact: {}", write_artifact("exp_telemetry", &json).display());
}
