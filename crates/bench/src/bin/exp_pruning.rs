//! E8 — pruning approaches (Section 6): compensation vs undo vs full
//! re-execution of the repaired history.
//!
//! On deposit-heavy banking workloads (every transaction has a declared
//! inverse), compares wall time of the three ways to obtain the repaired
//! state and verifies they agree bit-for-bit.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_pruning`

use std::collections::BTreeSet;

use histmerge_bench::{fmt, timed, Table};
use histmerge_core::prune::{compensate, undo};
use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::readsfrom::affected_set;
use histmerge_history::{AugmentedHistory, SerialHistory, TxnArena};
use histmerge_semantics::StaticAnalyzer;
use histmerge_txn::{DbState, TxnId, VarId};
use histmerge_workload::canned::Bank;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a banking tentative history of `n` transactions over `accounts`
/// accounts, with roughly `bad_frac` of them marked bad.
fn scenario(
    n: usize,
    accounts: u32,
    bad_frac: f64,
    seed: u64,
) -> (TxnArena, SerialHistory, BTreeSet<TxnId>, DbState) {
    let bank = Bank::new();
    let mut arena = TxnArena::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bad = BTreeSet::new();
    let hm: SerialHistory = (0..n)
        .map(|i| {
            let acct = VarId::new(rng.gen_range(0..accounts));
            let amt = rng.gen_range(1..100);
            let id = arena.alloc(|id| bank.deposit(id, &format!("d{i}"), acct, amt));
            if rng.gen_bool(bad_frac) {
                bad.insert(id);
            }
            id
        })
        .collect();
    if bad.is_empty() {
        bad.insert(hm.order()[0]);
    }
    let s0 = DbState::uniform(accounts, 1_000);
    (arena, hm, bad, s0)
}

fn main() {
    let oracle = StaticAnalyzer::new();
    let mut table = Table::new(&[
        "history len",
        "pruned",
        "undo ms",
        "compensate ms",
        "re-execute ms",
        "states agree",
    ]);
    println!("E8: pruning cost on deposit workloads (mean of 20 seeds)\n");
    for n in [20usize, 50, 100, 200] {
        let mut ms = [0.0f64; 3];
        let mut pruned_count = 0usize;
        let mut agree = true;
        const SEEDS: u64 = 20;
        for seed in 0..SEEDS {
            let (arena, hm, bad, s0) = scenario(n, 8, 0.1, seed);
            let aug = AugmentedHistory::execute(&arena, &hm, &s0).unwrap();
            let ag = affected_set(&arena, &hm, &bad);
            let rw = rewrite(
                &arena,
                &aug,
                &bad,
                RewriteAlgorithm::CanFollowCanPrecede,
                FixMode::Lemma1,
                &oracle,
            );
            pruned_count += rw.pruned().len();
            let (by_undo, t0) = timed(|| undo(&arena, &aug, &rw, &ag).unwrap());
            let (by_comp, t1) = timed(|| compensate(&arena, &aug, &rw).unwrap());
            let (by_reexec, t2) = timed(|| {
                AugmentedHistory::execute(&arena, &rw.repaired_history(), &s0)
                    .unwrap()
                    .final_state()
                    .clone()
            });
            ms[0] += t0;
            ms[1] += t1;
            ms[2] += t2;
            agree &= by_undo == by_comp && by_comp == by_reexec;
        }
        table.row_owned(vec![
            n.to_string(),
            fmt(pruned_count as f64 / SEEDS as f64, 1),
            fmt(ms[0] / SEEDS as f64, 3),
            fmt(ms[1] / SEEDS as f64, 3),
            fmt(ms[2] / SEEDS as f64, 3),
            agree.to_string(),
        ]);
        assert!(agree, "pruning approaches disagreed at n={n}");
    }
    table.print();
    println!(
        "\nWith deposits commuting, Algorithm 2 saves nearly everything, so pruning\n\
         touches only the few backed-out transactions — far cheaper than re-executing\n\
         the whole repaired history, and the gap widens with history length\n\
         (\"the cost of compensation or the undo approach is relatively very small\",\n\
         Section 7.1)."
    );
}
