//! E6 — the Section 1 motivation (after Gray et al. 1996): base-node load
//! as the mobile fleet scales up.
//!
//! "when the number of mobile nodes are much larger than that of base
//! nodes ... the reprocessing on the base nodes can be very busy since the
//! number of the accumulated tentative transactions ... can be huge."
//!
//! Sweeps the fleet size under both protocols with a FIXED base capacity,
//! reporting base CPU + I/O cost and the peak work backlog.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_scaleup`

use histmerge_bench::{fmt, Table};
use histmerge_replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge_workload::generator::ScenarioParams;

fn main() {
    let workload = ScenarioParams {
        n_vars: 1024,
        commutative_fraction: 0.7,
        guarded_fraction: 0.1,
        read_only_fraction: 0.1,
        hot_fraction: 0.05,
        hot_prob: 0.05,
        seed: 99,
        ..ScenarioParams::default()
    };
    let config = |protocol: Protocol, n_mobiles: usize| SimConfig {
        n_mobiles,
        duration: 500,
        base_rate: 0.1,
        mobile_rate: 0.1,
        connect_every: 100,
        protocol,
        strategy: SyncStrategy::WindowStart { window: 400 },
        workload: workload.clone(),
        base_capacity: 120.0,
        ..SimConfig::default()
    };

    let mut table = Table::new(&[
        "mobiles",
        "proto",
        "tentative",
        "saved",
        "base work (cpu+io)",
        "peak backlog",
        "saveRatio",
    ]);
    println!("E6: base-node load vs fleet size (fixed base capacity 120/tick)\n");
    for n in [2usize, 4, 8, 16, 32] {
        for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
            let m = Simulation::new(config(protocol, n)).expect("valid sim config").run().metrics;
            table.row_owned(vec![
                n.to_string(),
                protocol.name().to_string(),
                m.tentative_generated.to_string(),
                m.saved.to_string(),
                fmt(m.cost.base_cpu + m.cost.base_io, 0),
                fmt(m.peak_backlog, 0),
                fmt(m.save_ratio(), 2),
            ]);
        }
    }
    table.print();
    println!(
        "\nReprocessing base work grows linearly with the fleet. Merging stays well\n\
         below it while the save ratio holds up — saved transactions consume no base\n\
         query processing and no forced log write — but a bigger fleet also means\n\
         more conflicting installs per window, so the save ratio erodes and merging's\n\
         advantage narrows (and eventually inverts), exactly the |SAV| dependence\n\
         Section 7.1 predicts."
    );
}
