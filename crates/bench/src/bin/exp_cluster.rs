//! E12 (extension) — a partitioned base tier: coordination cost of the two
//! protocols.
//!
//! The paper's base transactions "may involve several base nodes". With
//! the master copies hash-partitioned across base nodes, reprocessing
//! re-executes every tentative transaction individually (narrow
//! footprints, little coordination), while merging installs each mobile's
//! surviving updates in ONE wide transaction that may span many
//! partitions (one two-phase commit per merge). This experiment measures
//! that trade as the base tier scales out.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_cluster`

use histmerge_bench::{fmt, Table};
use histmerge_replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge_workload::generator::ScenarioParams;

fn main() {
    let workload = ScenarioParams {
        n_vars: 256,
        commutative_fraction: 0.7,
        guarded_fraction: 0.1,
        read_only_fraction: 0.1,
        writes_per_txn: 2,
        hot_fraction: 0.05,
        hot_prob: 0.15,
        seed: 77,
        ..ScenarioParams::default()
    };
    let config = |protocol: Protocol, base_nodes: usize| SimConfig {
        n_mobiles: 8,
        duration: 500,
        base_rate: 0.1,
        mobile_rate: 0.15,
        connect_every: 100,
        protocol,
        strategy: SyncStrategy::WindowStart { window: 250 },
        workload: workload.clone(),
        base_nodes,
        ..SimConfig::default()
    };

    let mut table = Table::new(&[
        "base nodes",
        "proto",
        "commits",
        "distributed",
        "2PC msgs",
        "imbalance",
        "saveRatio",
    ]);
    println!("E12 (extension): partitioned base tier, 8 mobiles, 500 ticks\n");
    for base_nodes in [1usize, 2, 4, 8] {
        for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
            let report =
                Simulation::new(config(protocol, base_nodes)).expect("valid sim config").run();
            let c = &report.cluster;
            table.row_owned(vec![
                base_nodes.to_string(),
                protocol.name().to_string(),
                report.base_commits.to_string(),
                c.distributed_txns.to_string(),
                c.two_pc_messages.to_string(),
                fmt(c.imbalance(), 2),
                fmt(report.metrics.save_ratio(), 2),
            ]);
        }
    }
    table.print();
    println!(
        "\nMerging commits ~40% fewer base transactions, and at few partitions that\n\
         directly means fewer coordinations. But installs are WIDE — one merge's\n\
         update transaction spans most partitions — so merging's 2PC message count\n\
         converges toward reprocessing's as the base tier scales out: the\n\
         communication trade of Section 7.1 reappears inside the base tier."
    );
}
