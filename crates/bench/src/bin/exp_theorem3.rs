//! E3 — Theorem 3: Algorithm 1's repaired prefix equals the classical
//! reads-from transitive-closure back-out, on every workload.
//!
//! Sweeps contention and transaction mix; on every conflicting scenario,
//! asserts the two saved sequences are identical and reports how much of
//! the history the affected closure consumes (the quantity Algorithm 2
//! then attacks).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_theorem3`

use histmerge_bench::{artifact_json, fmt, write_artifact, Table};
use histmerge_core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge_history::backout::affected_weight;
use histmerge_history::readsfrom::affected_set;
use histmerge_history::{AugmentedHistory, BackoutStrategy, PrecedenceGraph, TwoCycleOptimal};
use histmerge_semantics::StaticAnalyzer;
use histmerge_workload::generator::{generate, ScenarioParams};

fn main() {
    let oracle = StaticAnalyzer::new();
    let mut table = Table::new(&[
        "hot_prob",
        "scenarios",
        "mean |B|",
        "mean |AG|",
        "mean saved",
        "alg1 == rftc",
    ]);
    println!("E3: Theorem 3 over a contention sweep (50 seeds per row, |Hm| = 20)\n");
    for hot_prob in [0.2, 0.4, 0.6, 0.8] {
        let mut n_scen = 0usize;
        let mut sum_b = 0usize;
        let mut sum_ag = 0usize;
        let mut sum_saved = 0usize;
        let mut all_equal = true;
        for seed in 0..50u64 {
            let params = ScenarioParams {
                n_vars: 48,
                n_tentative: 20,
                n_base: 12,
                commutative_fraction: 0.3,
                guarded_fraction: 0.2,
                read_only_fraction: 0.1,
                hot_fraction: 0.1,
                hot_prob,
                seed,
                ..ScenarioParams::default()
            };
            let sc = generate(&params);
            let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
            let weight = affected_weight(&sc.arena, &sc.hm);
            let bad = TwoCycleOptimal::new().compute(&graph, &weight).unwrap();
            if bad.is_empty() {
                continue;
            }
            n_scen += 1;
            sum_b += bad.len();
            let ag = affected_set(&sc.arena, &sc.hm, &bad);
            sum_ag += ag.len();
            let aug = AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap();
            let alg1 = rewrite(
                &sc.arena,
                &aug,
                &bad,
                RewriteAlgorithm::CanFollow,
                FixMode::Lemma1,
                &oracle,
            );
            let rftc = rewrite(
                &sc.arena,
                &aug,
                &bad,
                RewriteAlgorithm::ReadsFromClosure,
                FixMode::Lemma1,
                &oracle,
            );
            all_equal &= alg1.saved() == rftc.saved();
            sum_saved += alg1.saved().len();
        }
        let mean = |s: usize| fmt(s as f64 / n_scen.max(1) as f64, 2);
        table.row_owned(vec![
            fmt(hot_prob, 1),
            n_scen.to_string(),
            mean(sum_b),
            mean(sum_ag),
            mean(sum_saved),
            all_equal.to_string(),
        ]);
        assert!(all_equal, "Theorem 3 violated at hot_prob {hot_prob}");
    }
    table.print();
    println!(
        "\nAlgorithm 1 and the reads-from closure save IDENTICAL sequences everywhere\n\
         (Theorem 3); the affected closure |AG| grows with contention, which is the\n\
         work Algorithm 2 recovers."
    );

    let json = artifact_json("exp_theorem3", &[("contention_sweep", &table)]);
    println!("artifact: {}", write_artifact("exp_theorem3", &json).display());
}
