//! E19 — the million-mobile scale harness on the event-driven scheduler.
//!
//! The legacy tick loop rescanned the whole fleet twice per tick, so the
//! fleet sizes E6 could afford topped out in the dozens. With the
//! event-driven scheduler (DESIGN.md §14), compact per-mobile state
//! (`Arc` origin + write patch), and the lean base log, a tick costs only
//! its *due* events — this experiment sweeps the fleet from 10k to 1M
//! mobiles and reports the throughput the harness actually sustains.
//!
//! Two tables, two regimes:
//!
//! * `scale` — the headline sweep, under the linear **reprocessing**
//!   protocol. Per-tick scheduler cost is protocol-independent, and
//!   reprocessing resolves each pending transaction in O(program), so
//!   this table isolates what the harness itself scales like: ticks/sec,
//!   syncs/sec, the queue's pushed/popped totals (events, not fleet
//!   scans), and the peak-RSS proxy (`VmHWM` from `/proc/self/status`,
//!   0 where unavailable).
//! * `merge_regime` — the **merging** protocol with synchronized
//!   reconnects: whole fleet-sized batches hit the strided parallel
//!   merge pipeline, window rollovers force a reprocessing share, and
//!   the save ratio is exercised for real. Batch sizes here are bounded
//!   on purpose — every install lands in the shared window epoch, so
//!   same-tick cohorts pay for each other's installs (delta validation
//!   plus re-merges against the grown epoch history), which is
//!   quadratic in the cohort and the honest reason the saving regime
//!   does not extend to million-mobile reconnect storms.
//!
//! Every `scale` row is a **multi-seed** measurement: the sweep runs
//! three workload seeds per fleet size, reports the per-seed minimum
//! throughput (the conservative headline), and asserts the cross-seed
//! spread stays under 15% — the scaling claim is a property of the
//! harness, not of one lucky workload.
//!
//! `EXP_SCALE_SMOKE=1` drops the 1M row — the CI `bench-trajectory` job
//! runs that smoke mode on every PR and gates on the emitted
//! `BENCH_scale.json` (see `bench_trajectory`).
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_scale`

use histmerge_bench::{artifact_json, fmt, timed, write_artifact, Table};
use histmerge_replication::{
    Parallelism, Protocol, SchedulerMode, SimConfig, SimReport, Simulation, SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

/// The process's peak resident set in kilobytes (`VmHWM`), or 0 where
/// `/proc` is unavailable. A high-water mark: with ascending fleet sizes
/// the largest run dominates, which is the number the sweep is after.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1).and_then(|kb| kb.parse().ok()))
        })
        .unwrap_or(0)
}

/// The seeds the headline sweep averages over. Three distinct workloads
/// per fleet size: the scaling claim must not hinge on one lucky seed.
const SEEDS: [u64; 3] = [1906, 2718, 3141];

fn workload_seeded(seed: u64) -> ScenarioParams {
    ScenarioParams {
        n_vars: 256,
        commutative_fraction: 0.7,
        guarded_fraction: 0.1,
        read_only_fraction: 0.1,
        hot_fraction: 0.05,
        hot_prob: 0.05,
        seed,
        ..ScenarioParams::default()
    }
}

fn workload() -> ScenarioParams {
    workload_seeded(SEEDS[0])
}

/// The headline sweep: short horizon, one generation burst per mobile,
/// lean base log, linear reprocessing. Everything here is O(due events)
/// per tick — the fleet size only shows up in init, the generation burst,
/// and the reconnect volume.
fn scale_config(fleet: usize, seed: u64) -> SimConfig {
    SimConfig {
        n_mobiles: fleet,
        duration: 40,
        base_rate: 0.2,
        // 0.03/tick: the shared accumulator crosses 1.0 once, at tick 33 —
        // exactly one tentative transaction per mobile inside the horizon.
        mobile_rate: 0.03,
        connect_every: 16,
        protocol: Protocol::Reprocessing,
        strategy: SyncStrategy::AdaptiveWindow { max_hb: 64 },
        workload: workload_seeded(seed),
        base_capacity: 10_000.0,
        scheduler: SchedulerMode::EventQueue,
        lean_base_log: true,
        backlog_sample_every: 0,
        ..SimConfig::default()
    }
}

/// The merge-regime sweep: synchronized reconnects turn every cadence
/// tick into a fleet-sized batch for the strided parallel merge pipeline,
/// and the window rollovers at ticks 100 and 200 force a reprocessing
/// share.
fn merge_config(fleet: usize) -> SimConfig {
    SimConfig {
        n_mobiles: fleet,
        duration: 200,
        base_rate: 0.2,
        mobile_rate: 0.05,
        connect_every: 25,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 100 },
        workload: workload(),
        base_capacity: 10_000.0,
        parallelism: Parallelism::Auto,
        synchronized_reconnects: true,
        scheduler: SchedulerMode::EventQueue,
        lean_base_log: true,
        backlog_sample_every: 0,
        ..SimConfig::default()
    }
}

/// Runs `config` at least three times and keeps the fastest wall clock
/// (the same min-of-reps discipline as E18 — the runs are deterministic,
/// so the reports are identical and only the timing varies). Short runs
/// keep repeating (up to 12 reps) until ~750ms of samples have been
/// taken: the cross-seed spread assertion compares these minima, and a
/// 66ms fleet would otherwise measure scheduler jitter, not workload.
fn run(config: SimConfig) -> (SimReport, f64) {
    let mut best: Option<(SimReport, f64)> = None;
    let mut total = 0.0;
    for rep in 0..12 {
        if rep >= 3 && total >= 750.0 {
            break;
        }
        let (report, ms) =
            timed(|| Simulation::new(config.clone()).expect("valid sim config").run());
        total += ms;
        if best.as_ref().is_none_or(|(_, b)| ms < *b) {
            best = Some((report, ms));
        }
    }
    best.expect("at least one rep ran")
}

fn main() {
    let smoke = std::env::var_os("EXP_SCALE_SMOKE").is_some();
    let fleets: &[usize] = if smoke { &[10_000, 100_000] } else { &[10_000, 100_000, 1_000_000] };

    println!(
        "E19: fleet scale-up on the event scheduler{}\n",
        if smoke { " (smoke mode: 1M row skipped)" } else { "" }
    );

    let mut scale = Table::new(&[
        "fleet",
        "tentative",
        "syncs",
        "reprocessed",
        "ticks_per_sec",
        "syncs_per_sec",
        "seed_spread",
        "events_pushed",
        "events_popped",
        "peak_rss_mb",
        "wall_ms",
    ]);
    for &fleet in fleets {
        // One untimed warm-up per fleet size: the first run at a new
        // scale pays the process's heap growth to that footprint
        // (seen as up to ~50% extra wall on the 100k row), which would
        // otherwise land entirely on whichever seed happens to run
        // first and dominate the cross-seed spread.
        let _ = Simulation::new(scale_config(fleet, SEEDS[0])).expect("valid sim config").run();
        // Three workloads per fleet size; the row reports the *slowest*
        // seed (the conservative headline) and the relative cross-seed
        // throughput spread, asserted under 15%: the scaling claim is a
        // property of the harness, not of one lucky workload. The seeds
        // are timed in *interleaved rounds* (seed A, B, C, then A, B, C
        // again …) with the per-seed minimum kept, so a machine-load
        // drift across the measurement lands on every seed instead of
        // masquerading as workload variance.
        let mut mins = [f64::INFINITY; SEEDS.len()];
        let mut reports: Vec<Option<SimReport>> = SEEDS.iter().map(|_| None).collect();
        let mut total = 0.0;
        for round in 0..12 {
            if round >= 3 && total >= 750.0 {
                break;
            }
            for (i, &seed) in SEEDS.iter().enumerate() {
                let (report, ms) = timed(|| {
                    Simulation::new(scale_config(fleet, seed)).expect("valid sim config").run()
                });
                total += ms;
                mins[i] = mins[i].min(ms);
                let m = &report.metrics;
                assert!(
                    m.tentative_generated >= fleet,
                    "seed {seed}: generation burst never fired"
                );
                assert!(m.syncs > 0, "seed {seed}: no mobile ever synced pending work");
                assert_eq!(m.sched.fleet_scans, 0, "seed {seed}: event mode scanned the fleet");
                reports[i].get_or_insert(report);
            }
        }
        for (i, &seed) in SEEDS.iter().enumerate() {
            eprintln!("  fleet {fleet} seed {seed}: min {:.1} ms", mins[i]);
        }
        let slowest = (0..SEEDS.len())
            .max_by(|&a, &b| mins[a].total_cmp(&mins[b]))
            .expect("at least one seed ran");
        let (report, ms) = (reports[slowest].take().expect("seed ran"), mins[slowest]);
        let spread = {
            let (best, worst) = (
                mins.iter().cloned().fold(f64::INFINITY, f64::min),
                mins.iter().cloned().fold(0.0, f64::max),
            );
            // Wall-clock ratio == throughput ratio (fixed 40-tick horizon).
            (worst - best) / worst
        };
        assert!(spread < 0.15, "fleet {fleet}: cross-seed throughput spread {spread:.3} >= 15%");
        let m = &report.metrics;
        let secs = ms / 1e3;
        scale.row_owned(vec![
            fleet.to_string(),
            m.tentative_generated.to_string(),
            m.syncs.to_string(),
            m.reprocessed.to_string(),
            fmt(40.0 / secs, 1),
            fmt(m.syncs as f64 / secs, 1),
            fmt(spread, 3),
            m.sched.events_pushed.to_string(),
            m.sched.events_popped.to_string(),
            fmt(peak_rss_kb() as f64 / 1024.0, 1),
            fmt(ms, 0),
        ]);
    }
    scale.print();

    println!("\nmerge regime (synchronized reconnects, window 100):\n");
    let mut merge_regime = Table::new(&[
        "mobiles",
        "tentative",
        "syncs",
        "saved",
        "reprocessed",
        "save_ratio",
        "merges_per_sec",
        "batch_max",
        "wall_ms",
    ]);
    for &fleet in &[64usize, 256] {
        let (report, ms) = run(merge_config(fleet));
        let m = &report.metrics;
        let secs = ms / 1e3;
        assert!(m.saved > 0, "merging never engaged at {fleet} mobiles");
        merge_regime.row_owned(vec![
            fleet.to_string(),
            m.tentative_generated.to_string(),
            m.syncs.to_string(),
            m.saved.to_string(),
            m.reprocessed.to_string(),
            fmt(m.save_ratio(), 3),
            fmt(m.syncs as f64 / secs, 1),
            m.batch_sizes.iter().max().copied().unwrap_or(0).to_string(),
            fmt(ms, 0),
        ]);
    }
    merge_regime.print();

    println!(
        "\nThe sweep is the point the ROADMAP's million-user north star needs: per-tick\n\
         cost tracks due events, not fleet size, so the harness sustains fleets three\n\
         orders of magnitude past E6's. The split between the tables is the honest\n\
         finding: the scale rows run the linear reprocessing protocol, because under\n\
         merging a same-tick reconnect cohort pays quadratically for its own installs\n\
         (each member's delta validation and re-merge sees every earlier member's\n\
         appended base transactions) — so the saving regime lives at bounded batch\n\
         sizes, measured in the merge-regime rows, while fleet scale itself is now a\n\
         scheduler-and-memory question, not a tick-loop one."
    );
    let path = write_artifact(
        "BENCH_scale",
        &artifact_json("exp_scale", &[("scale", &scale), ("merge_regime", &merge_regime)]),
    );
    println!("\nartifact: {}", path.display());
}
