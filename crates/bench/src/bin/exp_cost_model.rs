//! E5 — Section 7.1: merging vs reprocessing cost as |SAV| varies.
//!
//! "When the size of SAV is big enough ... the merging protocol can win.
//! On the contrary, when the size of SAV is very small the merging
//! protocol will probably lose."
//!
//! The experiment sweeps contention (hotspot skew) to move |SAV| from
//! nearly the whole history down to nearly nothing, computing both
//! protocols' Section 7.1 costs for the SAME merges, and reports the
//! crossover.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_cost_model`

use histmerge_bench::{fmt, Table};
use histmerge_core::merge::{MergeConfig, Merger};
use histmerge_history::{PrecedenceGraph, SerialHistory};
use histmerge_workload::cost::{
    merging_cost, reprocessing_cost, CostParams, MergeStats, ReprocessStats,
};
use histmerge_workload::generator::{generate, ScenarioParams};

fn main() {
    let cost = CostParams::default();
    let mut table = Table::new(&[
        "hot_prob",
        "|SAV|/|Hm|",
        "merge total",
        "reproc total",
        "merge/reproc",
        "merge baseIO",
        "reproc baseIO",
        "winner",
    ]);

    println!("E5: Section 7.1 cost comparison, 30 tentative txns per merge, mean of 30 seeds\n");
    for hot_prob in [0.05, 0.2, 0.4, 0.6, 0.8, 0.95] {
        let mut merge_total = 0.0;
        let mut reproc_total = 0.0;
        let mut merge_io = 0.0;
        let mut reproc_io = 0.0;
        let mut sav = 0usize;
        let mut total = 0usize;
        for seed in 0..30u64 {
            let params = ScenarioParams {
                n_vars: 64,
                n_tentative: 30,
                n_base: 15,
                commutative_fraction: 0.5,
                guarded_fraction: 0.1,
                read_only_fraction: 0.05,
                hot_fraction: 0.08,
                hot_prob,
                seed,
                ..ScenarioParams::default()
            };
            let sc = generate(&params);
            let merger = Merger::new(MergeConfig::default());
            let outcome = merger.merge(&sc.arena, &sc.hm, &sc.hb, &sc.s0).unwrap();

            sav += outcome.saved.len();
            total += sc.hm.len();

            let rw_entries: usize = sc
                .hm
                .iter()
                .map(|id| {
                    let t = sc.arena.get(id);
                    t.readset().len() + t.writeset().len()
                })
                .sum();
            let graph_edges =
                PrecedenceGraph::build(&sc.arena, &sc.hm, &SerialHistory::new()).edges().len();
            let backed_out_stmts: usize = outcome
                .backed_out
                .iter()
                .map(|id| sc.arena.get(*id).program().statement_count())
                .sum();
            let all_stmts: usize =
                sc.hm.iter().map(|id| sc.arena.get(id).program().statement_count()).sum();

            let m = merging_cost(
                &cost,
                &MergeStats {
                    hm_len: sc.hm.len(),
                    hb_len: sc.hb.len(),
                    rw_entries,
                    graph_edges,
                    full_graph_edges: outcome.graph_edges,
                    n_saved: outcome.saved.len(),
                    n_backed_out: outcome.backed_out.len(),
                    backed_out_stmts,
                    forwarded_items: outcome.forwarded.len(),
                },
            );
            let r = reprocessing_cost(
                &cost,
                &ReprocessStats { n_txns: sc.hm.len(), total_stmts: all_stmts },
            );
            merge_total += m.total();
            reproc_total += r.total();
            merge_io += m.base_io;
            reproc_io += r.base_io;
        }
        let ratio = merge_total / reproc_total;
        // Same 0/0 guard as `Metrics::save_ratio`: an empty sweep cell
        // reads as "nothing saved", not NaN.
        let save_ratio = if total == 0 { 0.0 } else { sav as f64 / total as f64 };
        table.row_owned(vec![
            fmt(hot_prob, 2),
            fmt(save_ratio, 2),
            fmt(merge_total / 30.0, 0),
            fmt(reproc_total / 30.0, 0),
            fmt(ratio, 2),
            fmt(merge_io / 30.0, 0),
            fmt(reproc_io / 30.0, 0),
            (if ratio < 1.0 { "merging" } else { "reprocessing" }).to_string(),
        ]);
    }
    table.print();
    println!(
        "\nThe crossover: merging wins while enough of the history survives (large |SAV|),\n\
         and loses once conflicts force most transactions to be reprocessed anyway."
    );
}
