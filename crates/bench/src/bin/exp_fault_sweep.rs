//! E15 — fault-injected resumable sync sessions.
//!
//! Two sweeps over the session path (`SyncPath::Session`):
//!
//! 1. a uniform fault-rate sweep (every kind at probability `p`): how much
//!    of merging's work saving survives as the transport and the base get
//!    less reliable, plus the recovery traffic (retries, ledger resumes,
//!    recovered sessions, abandons) that buys it;
//! 2. a per-kind sweep at a fixed rate: which fault class exercises which
//!    recovery mechanism.
//!
//! Every run is audited by the convergence oracle. The headline assertion
//! is the issue's acceptance bar: at a 10% uniform fault rate the mean
//! save ratio stays within 5% (relative) of the fault-free figure — the
//! session machinery spends retries and ledger lookups, not merge work.
//!
//! Run: `cargo run --release -p histmerge-bench --bin exp_fault_sweep`

use histmerge_bench::{artifact_json, fmt, write_artifact, Table};
use histmerge_replication::{
    FaultKind, FaultPlan, FaultRates, Protocol, SimConfig, SimReport, Simulation, SyncPath,
    SyncStrategy,
};
use histmerge_workload::generator::ScenarioParams;

const SEEDS: u64 = 5;

fn config(seed: u64, fault: FaultPlan) -> SimConfig {
    SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 60,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.08,
            hot_prob: 0.6,
            seed,
            ..ScenarioParams::default()
        },
        sync_path: SyncPath::Session,
        fault,
        check_convergence: true,
        ..SimConfig::default()
    }
}

fn run_checked(seed: u64, fault: FaultPlan, label: &str) -> SimReport {
    // Reject malformed sweep grids up front with the offending field
    // named, instead of silently never firing (negative) or panicking
    // deep inside the RNG (>1.0).
    fault.rates.validate().unwrap_or_else(|err| panic!("{label}: bad sweep cell: {err}"));
    let report = Simulation::new(config(seed, fault)).expect("valid sim config").run();
    let convergence = report.convergence.expect("oracle requested");
    assert!(convergence.holds(), "{label} seed {seed}: oracle failed: {convergence:?}");
    report
}

/// Mean save ratio, summed recovery counters, and summed base cost over
/// the seed set for one fault plan shape.
struct Cell {
    save_ratio: f64,
    saved: usize,
    reprocessed: usize,
    abandoned: usize,
    recovered: usize,
    retries: usize,
    ledger_resumes: usize,
    trimmed: usize,
    base_cost: f64,
}

fn sweep_cell(rates: FaultRates, label: &str) -> Cell {
    let mut cell = Cell {
        save_ratio: 0.0,
        saved: 0,
        reprocessed: 0,
        abandoned: 0,
        recovered: 0,
        retries: 0,
        ledger_resumes: 0,
        trimmed: 0,
        base_cost: 0.0,
    };
    for seed in 0..SEEDS {
        let report = run_checked(seed, FaultPlan::seeded(seed, rates), label);
        let m = &report.metrics;
        cell.save_ratio += m.save_ratio() / SEEDS as f64;
        cell.saved += m.saved;
        cell.reprocessed += m.reprocessed;
        cell.abandoned += m.fault.abandoned_sessions;
        cell.recovered += m.fault.recovered_sessions;
        cell.retries += m.fault.retries;
        cell.ledger_resumes += m.fault.ledger_resumes;
        cell.trimmed += m.fault.trimmed_txns;
        cell.base_cost += m.cost.base_cpu + m.cost.base_io;
    }
    cell
}

fn main() {
    println!("E15: fault-injected sync sessions (6 mobiles, 600 ticks, mean of {SEEDS} seeds)\n");

    // Part 1: uniform rate sweep.
    let mut rate_table = Table::new(&[
        "rate",
        "saveRatio",
        "saved",
        "reproc",
        "retries",
        "ledgerResume",
        "recovered",
        "abandoned",
        "baseCost",
    ]);
    let mut fault_free_ratio = 0.0;
    let mut ratio_at_10 = 0.0;
    for rate in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let cell = sweep_cell(FaultRates::uniform(rate), "uniform");
        if rate == 0.0 {
            fault_free_ratio = cell.save_ratio;
        }
        if rate == 0.1 {
            ratio_at_10 = cell.save_ratio;
        }
        rate_table.row_owned(vec![
            fmt(rate, 2),
            fmt(cell.save_ratio, 3),
            cell.saved.to_string(),
            cell.reprocessed.to_string(),
            cell.retries.to_string(),
            cell.ledger_resumes.to_string(),
            cell.recovered.to_string(),
            cell.abandoned.to_string(),
            fmt(cell.base_cost, 0),
        ]);
    }
    rate_table.print();

    // Part 2: one fault kind at a time, rate 0.15.
    let mut kind_table = Table::new(&[
        "kind",
        "saveRatio",
        "retries",
        "ledgerResume",
        "recovered",
        "trimmed",
        "abandoned",
    ]);
    for kind in FaultKind::ALL {
        let cell = sweep_cell(FaultRates::only(kind, 0.15), kind.name());
        kind_table.row_owned(vec![
            kind.name().to_string(),
            fmt(cell.save_ratio, 3),
            cell.retries.to_string(),
            cell.ledger_resumes.to_string(),
            cell.recovered.to_string(),
            cell.trimmed.to_string(),
            cell.abandoned.to_string(),
        ]);
    }
    println!("\nper-kind sweep at rate 0.15:\n");
    kind_table.print();

    // The acceptance bar: savings survive a 10% fault rate.
    let drift = (fault_free_ratio - ratio_at_10).abs() / fault_free_ratio.max(1e-9);
    println!(
        "\nsave ratio fault-free {} vs 10% faults {} (relative drift {})",
        fmt(fault_free_ratio, 3),
        fmt(ratio_at_10, 3),
        fmt(drift, 3)
    );
    assert!(
        drift <= 0.05,
        "save ratio drifted {drift:.3} (> 5%) at a 10% fault rate: \
         {fault_free_ratio:.3} -> {ratio_at_10:.3}"
    );
    println!("Merging's savings survive: recovery costs retries and ledger lookups, not merges.");

    let json = artifact_json(
        "exp_fault_sweep",
        &[("rate_sweep", &rate_table), ("kind_sweep", &kind_table)],
    );
    println!("\nartifact: {}", write_artifact("exp_fault_sweep", &json).display());
}
