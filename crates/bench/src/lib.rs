//! Shared helpers for the experiment binaries and benchmarks.
//!
//! Every experiment in `src/bin/` regenerates one table or figure of
//! EXPERIMENTS.md: it prints a Markdown-ish aligned table to stdout and is
//! deterministic for its built-in seeds. See DESIGN.md §4 for the
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub mod json;

/// A simple aligned table printer for experiment output.
///
/// # Example
///
/// ```rust
/// use histmerge_bench::Table;
///
/// let mut t = Table::new(&["n", "saved", "ratio"]);
/// t.row(&["10", "7", "0.70"]);
/// let rendered = t.render();
/// assert!(rendered.contains("saved"));
/// assert!(rendered.contains("0.70"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:>w$} | ", cell, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Table {
    /// Renders the table as a JSON array of row objects keyed by header
    /// (all values as strings — the artifacts mirror the printed tables).
    pub fn render_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let fields: Vec<String> = self
                    .headers
                    .iter()
                    .zip(row.iter())
                    .map(|(h, v)| format!("\"{}\":\"{}\"", json_escape(h), json_escape(v)))
                    .collect();
                format!("{{{}}}", fields.join(","))
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
}

/// Renders an experiment artifact: the experiment name plus its named
/// tables, as one JSON document.
pub fn artifact_json(experiment: &str, tables: &[(&str, &Table)]) -> String {
    let entries: Vec<String> = tables
        .iter()
        .map(|(name, table)| format!("\"{}\":{}", json_escape(name), table.render_json()))
        .collect();
    format!(
        "{{\"experiment\":\"{}\",\"tables\":{{{}}}}}",
        json_escape(experiment),
        entries.join(",")
    )
}

/// Writes an experiment's JSON artifact to `<dir>/<name>.json`, where
/// `<dir>` is `$EXPERIMENTS_DIR` or `target/experiments`, creating the
/// directory. CI uploads the directory via `actions/upload-artifact`.
/// Returns the path written.
pub fn write_artifact(name: &str, json: &str) -> std::path::PathBuf {
    let dir = std::env::var_os("EXPERIMENTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/experiments"));
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write experiment artifact");
    path
}

/// The path `<dir>/<filename>` under the experiments artifact directory
/// (`$EXPERIMENTS_DIR` or `target/experiments`, created if missing) —
/// for non-JSON artifacts ([`write_artifact`] handles the `.json` ones):
/// Prometheus dumps, trace JSONL, HTML reports.
pub fn experiments_path(filename: &str) -> std::path::PathBuf {
    let dir = std::env::var_os("EXPERIMENTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/experiments"));
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir.join(filename)
}

/// Times a closure, returning `(result, milliseconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64() * 1e3)
}

/// Formats a float with the given precision (experiment-table helper).
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["alg", "saved"]);
        t.row(&["rftc", "2"]);
        t.row_owned(vec!["algorithm2".into(), "17".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alg"));
        assert!(lines[1].starts_with("|-"));
        assert!(lines[3].contains("algorithm2"));
        // Columns align: every line same length.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn timed_returns_result() {
        let (v, ms) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let mut t = Table::new(&["alg", "note"]);
        t.row(&["rftc", "a \"quoted\"\nvalue"]);
        assert_eq!(t.render_json(), r#"[{"alg":"rftc","note":"a \"quoted\"\nvalue"}]"#);
        let doc = artifact_json("exp_demo", &[("main", &t)]);
        assert!(doc.starts_with(r#"{"experiment":"exp_demo","tables":{"main":["#));
        assert!(doc.ends_with("]}}"));
    }

    #[test]
    fn artifacts_land_in_experiments_dir() {
        let dir = std::env::temp_dir().join("histmerge-artifact-test");
        std::env::set_var("EXPERIMENTS_DIR", &dir);
        let path = write_artifact("exp_smoke", "{\"experiment\":\"exp_smoke\"}");
        std::env::remove_var("EXPERIMENTS_DIR");
        assert_eq!(path, dir.join("exp_smoke.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"experiment\":\"exp_smoke\"}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
